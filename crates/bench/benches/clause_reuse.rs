//! Cross-output clause reuse benchmarks.
//!
//! The workload is the twin-heavy population `gen_circuit --copies
//! --shared-substructure` plants: permuted copies (identical canonical
//! cones — the exact channel and oracle pool reuse these verbatim) and
//! near-twins (same support, shared subcones, different fingerprint —
//! served by the vetted cluster channel). Runs are uncached so the
//! measurement isolates the clause bank from the result cache, which
//! would otherwise serve the exact twins first.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use step_aig::Aig;
use step_circuits::{registry_all, with_permuted_copies, with_shared_substructure, Scale};
use step_core::{BiDecomposer, ClauseBank, DecompConfig, GateOp, Model};

/// The CI smoke circuit at smoke scale, grown with both twin
/// populations.
fn twin_heavy() -> Aig {
    let entry = registry_all()
        .into_iter()
        .find(|e| e.name == "s15850.1")
        .expect("registry carries the smoke circuit");
    let base = entry.build(Scale::Smoke);
    with_shared_substructure(&with_permuted_copies(&base, 2), 2)
}

/// One uncached whole-circuit run; `bank` attaches a shared clause
/// bank (reuse is on whenever one is given or `reuse` is set).
fn run(aig: &Aig, reuse: bool, bank: Option<Arc<ClauseBank>>) {
    let mut config = DecompConfig::new(Model::QbfDisjoint);
    config.extract = false;
    config.verify = false;
    config.clause_reuse = reuse;
    let mut engine = BiDecomposer::new(config);
    if let Some(bank) = bank {
        engine.set_clause_bank(bank);
    }
    let r = engine
        .decompose_circuit(aig, GateOp::Or)
        .expect("stand-in circuits are well-formed");
    assert!(r.num_decomposed() > 0);
}

/// Reuse on vs off, fresh bank every iteration: what one cold
/// whole-circuit run gains from its own internal donations (pool,
/// exact and cluster channels all start empty).
fn bench_reuse_on_vs_off(c: &mut Criterion) {
    let mut g = c.benchmark_group("clause_reuse");
    g.sample_size(10);
    let aig = twin_heavy();
    g.bench_function("reuse_off", |b| b.iter(|| run(&aig, false, None)));
    g.bench_function("reuse_on", |b| b.iter(|| run(&aig, true, None)));
    g.finish();
}

/// A bank pre-warmed by a priming run: every cone of the measured run
/// has an exact donor, the verbatim-import fast path a sweep's later
/// models (or repeated circuits) enjoy.
fn bench_warm_bank(c: &mut Criterion) {
    let mut g = c.benchmark_group("clause_reuse_warm_bank");
    g.sample_size(10);
    let aig = twin_heavy();
    let bank = Arc::new(ClauseBank::new());
    run(&aig, true, Some(bank.clone()));
    assert!(!bank.is_empty(), "the priming run must donate");
    g.bench_function("warm_bank", |b| {
        b.iter(|| run(&aig, true, Some(bank.clone())))
    });
    g.bench_function("cold", |b| b.iter(|| run(&aig, false, None)));
    g.finish();
}

criterion_group!(benches, bench_reuse_on_vs_off, bench_warm_bank);
criterion_main!(benches);
