//! Criterion kernels for the CDCL SAT solver substrate.

use criterion::{criterion_group, criterion_main, Criterion};
use step_cnf::{Lit, Var};
use step_sat::{SolveResult, Solver};

fn pigeonhole(n: usize) -> (usize, Vec<Vec<Lit>>) {
    let pigeons = n + 1;
    let var = |p: usize, h: usize| Lit::pos(Var::new(p * n + h));
    let mut clauses = Vec::new();
    for p in 0..pigeons {
        clauses.push((0..n).map(|h| var(p, h)).collect());
    }
    for h in 0..n {
        for p1 in 0..pigeons {
            for p2 in p1 + 1..pigeons {
                clauses.push(vec![!var(p1, h), !var(p2, h)]);
            }
        }
    }
    (pigeons * n, clauses)
}

fn random_3sat(nvars: usize, nclauses: usize, seed: u64) -> Vec<Vec<Lit>> {
    let mut s = seed | 1;
    let mut rnd = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    (0..nclauses)
        .map(|_| {
            (0..3)
                .map(|_| {
                    let v = (rnd() % nvars as u64) as usize;
                    Lit::new(Var::new(v), rnd() % 2 == 0)
                })
                .collect()
        })
        .collect()
}

fn bench_sat(c: &mut Criterion) {
    let mut g = c.benchmark_group("sat_kernels");
    g.sample_size(10);

    g.bench_function("php6_unsat", |b| {
        let (nv, clauses) = pigeonhole(6);
        b.iter(|| {
            let mut s = Solver::new();
            s.ensure_vars(nv);
            for cl in &clauses {
                s.add_clause(cl.iter().copied());
            }
            assert_eq!(s.solve(), SolveResult::Unsat);
        })
    });

    g.bench_function("random3sat_sat_phase", |b| {
        // Clause ratio 3.5: almost surely satisfiable.
        let clauses = random_3sat(120, 420, 42);
        b.iter(|| {
            let mut s = Solver::new();
            s.ensure_vars(120);
            for cl in &clauses {
                s.add_clause(cl.iter().copied());
            }
            let _ = s.solve();
        })
    });

    g.bench_function("php4_with_proof", |b| {
        let (nv, clauses) = pigeonhole(4);
        b.iter(|| {
            let mut s = Solver::new();
            s.enable_proof();
            s.ensure_vars(nv);
            for cl in &clauses {
                s.add_clause(cl.iter().copied());
            }
            assert_eq!(s.solve(), SolveResult::Unsat);
            assert!(s.proof().unwrap().empty_clause().is_some());
        })
    });

    g.finish();
}

criterion_group!(benches, bench_sat);
criterion_main!(benches);
