//! Criterion kernels for the CDCL SAT solver substrate.

use criterion::{criterion_group, criterion_main, Criterion};
use step_cnf::{Lit, Var};
use step_sat::{ClauseDbPolicy, RestartPolicy, SolveResult, Solver};

fn pigeonhole(n: usize) -> (usize, Vec<Vec<Lit>>) {
    let pigeons = n + 1;
    let var = |p: usize, h: usize| Lit::pos(Var::new(p * n + h));
    let mut clauses = Vec::new();
    for p in 0..pigeons {
        clauses.push((0..n).map(|h| var(p, h)).collect());
    }
    for h in 0..n {
        for p1 in 0..pigeons {
            for p2 in p1 + 1..pigeons {
                clauses.push(vec![!var(p1, h), !var(p2, h)]);
            }
        }
    }
    (pigeons * n, clauses)
}

fn random_3sat(nvars: usize, nclauses: usize, seed: u64) -> Vec<Vec<Lit>> {
    let mut s = seed | 1;
    let mut rnd = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    (0..nclauses)
        .map(|_| {
            (0..3)
                .map(|_| {
                    let v = (rnd() % nvars as u64) as usize;
                    Lit::new(Var::new(v), rnd() % 2 == 0)
                })
                .collect()
        })
        .collect()
}

fn bench_sat(c: &mut Criterion) {
    let mut g = c.benchmark_group("sat_kernels");
    g.sample_size(10);

    g.bench_function("php6_unsat", |b| {
        let (nv, clauses) = pigeonhole(6);
        b.iter(|| {
            let mut s = Solver::new();
            s.ensure_vars(nv);
            for cl in &clauses {
                s.add_clause(cl.iter().copied());
            }
            assert_eq!(s.solve(), SolveResult::Unsat);
        })
    });

    g.bench_function("random3sat_sat_phase", |b| {
        // Clause ratio 3.5: almost surely satisfiable.
        let clauses = random_3sat(120, 420, 42);
        b.iter(|| {
            let mut s = Solver::new();
            s.ensure_vars(120);
            for cl in &clauses {
                s.add_clause(cl.iter().copied());
            }
            let _ = s.solve();
        })
    });

    g.bench_function("php4_with_proof", |b| {
        let (nv, clauses) = pigeonhole(4);
        b.iter(|| {
            let mut s = Solver::new();
            s.enable_proof();
            s.ensure_vars(nv);
            for cl in &clauses {
                s.add_clause(cl.iter().copied());
            }
            assert_eq!(s.solve(), SolveResult::Unsat);
            assert!(s.proof().unwrap().empty_clause().is_some());
        })
    });

    g.finish();
}

/// Builds a solver with the given kernel knobs over a clause list.
fn configured(
    nv: usize,
    clauses: &[Vec<Lit>],
    restarts: RestartPolicy,
    db: ClauseDbPolicy,
    preprocess: bool,
) -> Solver {
    let mut s = Solver::new();
    s.set_restart_policy(restarts);
    s.set_clause_db_policy(db);
    s.set_preprocess(preprocess);
    s.ensure_vars(nv);
    for cl in clauses {
        s.add_clause(cl.iter().copied());
    }
    s
}

/// One ablation group per kernel heuristic, on a shared hard-UNSAT +
/// phase-transition workload: flip exactly one knob against the
/// defaults so a regression names the heuristic that caused it.
fn bench_kernel_ablations(c: &mut Criterion) {
    let (php_nv, php) = pigeonhole(6);
    // Ratio ~4.2: near the phase transition, where restarts matter.
    let hard = random_3sat(110, 462, 7);

    let mut g = c.benchmark_group("sat_restart_policy");
    g.sample_size(10);
    for policy in [RestartPolicy::Luby, RestartPolicy::Ema] {
        g.bench_function(format!("php6/{policy}"), |b| {
            b.iter(|| {
                let mut s = configured(php_nv, &php, policy, ClauseDbPolicy::Tiered, false);
                assert_eq!(s.solve(), SolveResult::Unsat);
            })
        });
        g.bench_function(format!("random3sat_hard/{policy}"), |b| {
            b.iter(|| {
                let mut s = configured(110, &hard, policy, ClauseDbPolicy::Tiered, false);
                let _ = s.solve();
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("sat_clause_db");
    g.sample_size(10);
    for db in [ClauseDbPolicy::Tiered, ClauseDbPolicy::SortHalf] {
        g.bench_function(format!("php6/{db:?}"), |b| {
            b.iter(|| {
                let mut s = configured(php_nv, &php, RestartPolicy::Luby, db, false);
                assert_eq!(s.solve(), SolveResult::Unsat);
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("sat_preprocess");
    g.sample_size(10);
    for preprocess in [false, true] {
        g.bench_function(format!("php6/pp={preprocess}"), |b| {
            b.iter(|| {
                let mut s = configured(
                    php_nv,
                    &php,
                    RestartPolicy::Luby,
                    ClauseDbPolicy::Tiered,
                    preprocess,
                );
                assert_eq!(s.solve(), SolveResult::Unsat);
            })
        });
        g.bench_function(format!("random3sat_hard/pp={preprocess}"), |b| {
            b.iter(|| {
                let mut s = configured(
                    110,
                    &hard,
                    RestartPolicy::Luby,
                    ClauseDbPolicy::Tiered,
                    preprocess,
                );
                let _ = s.solve();
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sat, bench_kernel_ablations);
criterion_main!(benches);
