//! Criterion kernels for the CEGAR 2QBF engine.

use criterion::{criterion_group, criterion_main, Criterion};
use step_aig::Aig;
use step_qbf::{ExistsForall, Qbf2Result};

/// ∃x₀..xₙ₋₁ ∀y₀..yₙ₋₁ . ∧ᵢ (xᵢ ∨ yᵢ): valid (all xᵢ = 1), needs
/// refinement to discover.
fn cover_instance(n: usize) -> (Aig, step_aig::AigLit, Vec<usize>, Vec<usize>) {
    let mut aig = Aig::new();
    let xs: Vec<_> = (0..n).map(|i| aig.add_input(format!("x{i}"))).collect();
    let ys: Vec<_> = (0..n).map(|i| aig.add_input(format!("y{i}"))).collect();
    let cl: Vec<_> = (0..n).map(|i| aig.or(xs[i], ys[i])).collect();
    let m = aig.and_many(&cl);
    (aig, m, (0..n).collect(), (n..2 * n).collect())
}

/// ∃x ∀y . ∧ᵢ (xᵢ ≡ yᵢ): invalid; CEGAR must exhaust candidates.
fn matching_instance(n: usize) -> (Aig, step_aig::AigLit, Vec<usize>, Vec<usize>) {
    let mut aig = Aig::new();
    let xs: Vec<_> = (0..n).map(|i| aig.add_input(format!("x{i}"))).collect();
    let ys: Vec<_> = (0..n).map(|i| aig.add_input(format!("y{i}"))).collect();
    let eq: Vec<_> = (0..n).map(|i| aig.xnor(xs[i], ys[i])).collect();
    let m = aig.and_many(&eq);
    (aig, m, (0..n).collect(), (n..2 * n).collect())
}

fn bench_qbf(c: &mut Criterion) {
    let mut g = c.benchmark_group("qbf_kernels");
    g.sample_size(10);

    g.bench_function("cover10_valid", |b| {
        b.iter(|| {
            let (aig, m, e, u) = cover_instance(10);
            let mut s = ExistsForall::new(aig, m, e, u);
            assert!(matches!(s.solve(), Qbf2Result::Valid(_)));
        })
    });

    g.bench_function("matching6_invalid", |b| {
        b.iter(|| {
            let (aig, m, e, u) = matching_instance(6);
            let mut s = ExistsForall::new(aig, m, e, u);
            assert_eq!(s.solve(), Qbf2Result::Invalid);
        })
    });

    g.finish();
}

criterion_group!(benches, bench_qbf);
criterion_main!(benches);
