//! Criterion kernel for Table I: the per-circuit quality comparison
//! (STEP-QD vs STEP-MG on disjointness) on a smoke-scale stand-in.
//! The `table1` binary prints the full table.

use criterion::{criterion_group, criterion_main, Criterion};
use step_bench::{compare_quality, run_model, HarnessOpts, QualityMetric};
use step_circuits::{registry_table1, Scale};
use step_core::{BudgetPolicy, Model};

fn opts() -> HarnessOpts {
    HarnessOpts {
        scale: Scale::Smoke,
        budget: BudgetPolicy::quick(),
        op: step_core::GateOp::Or,
        filter: None,
        partitions_only: true,
        jobs: 1,
        cache: None,
        ..HarnessOpts::default()
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_quality");
    g.sample_size(10);
    let entry = registry_table1()
        .into_iter()
        .find(|e| e.name == "mm9b")
        .expect("registry row");
    let o = opts();
    g.bench_function("mm9b_qd_vs_mg_disjointness", |b| {
        b.iter(|| {
            let mg = run_model(&entry, Model::MusGroup, &o);
            let qd = run_model(&entry, Model::QbfDisjoint, &o);
            let (better, equal) = compare_quality(&qd, &mg, QualityMetric::Disjointness);
            assert!(better + equal > 99.9);
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
