//! Benchmark circuit suite for the DATE-2012 evaluation.
//!
//! The paper evaluates on ISCAS'85, ISCAS'89, ITC'99 and LGSYNTH
//! circuits. Those files cannot be redistributed in this offline
//! reproduction, so this crate provides:
//!
//! * [`generators`] — parameterized structural circuit families
//!   (adders, multipliers, comparators, parity trees, decoders, ALUs,
//!   multiplexer trees, random DAGs, LFSRs, counters) whose
//!   primary-output cones span the same decomposability regimes as the
//!   originals (disjointly decomposable arithmetic, shared-support
//!   control, undecomposable majority-like cones);
//! * [`registry`] — a named stand-in for **every circuit row of the
//!   paper's Tables I and III** (with the paper's `#In`/`#InM`/`#Out`
//!   statistics attached) plus enough additional circuits to mirror
//!   the 145-circuit population of Figure 1;
//! * native parsers (via `step-aig`) so the *real* benchmark files can
//!   be dropped in (`.bench`, BLIF) and used instead — see
//!   [`load_file`].
//!
//! ```
//! use step_circuits::generators;
//! let adder = generators::ripple_adder(4);
//! assert_eq!(adder.num_inputs(), 9); // a[4], b[4], cin
//! assert_eq!(adder.num_outputs(), 5); // sum[4], cout
//! ```

pub mod generators;
pub mod registry;

pub use registry::{registry_all, registry_table1, CircuitEntry, PaperStats, Scale};

use std::path::Path;

use step_aig::{Aig, ParseError};

/// Loads a circuit file by extension: `.bench` (ISCAS), `.blif`,
/// `.aag` (ASCII AIGER) or `.aig` (binary AIGER).
///
/// # Errors
///
/// Returns a [`ParseError`] for unsupported extensions, I/O failures or
/// malformed content.
pub fn load_file(path: &Path) -> Result<Aig, ParseError> {
    let bytes = std::fs::read(path)
        .map_err(|e| ParseError::new(0, format!("cannot read {}: {e}", path.display())))?;
    let as_text = |bytes: &[u8]| -> Result<String, ParseError> {
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ParseError::new(0, format!("{} is not UTF-8 text", path.display())))
    };
    match path.extension().and_then(|e| e.to_str()) {
        Some("bench") => step_aig::bench_io::parse(&as_text(&bytes)?),
        Some("blif") => step_aig::blif::parse(&as_text(&bytes)?),
        Some("aag") => step_aig::aiger::parse(&as_text(&bytes)?),
        Some("aig") => step_aig::aiger::parse_binary(&bytes),
        other => Err(ParseError::new(
            0,
            format!(
                "unsupported circuit extension {other:?} for {}",
                path.display()
            ),
        )),
    }
}

/// Extends `aig` with `copies − 1` permuted-input twins of every
/// primary output: copy `j` rebuilds each output cone with every input
/// `i` replaced by input `(i + j) mod #inputs`, added as output
/// `<name>_p<j>`.
///
/// The twins are structurally identical to their originals up to a
/// support permutation — exactly the cone population the engine's
/// result cache is built for — which makes the result a deterministic
/// repeated-cone stress circuit for cache smoke tests and benchmarks
/// (`gen_circuit --copies`).
pub fn with_permuted_copies(aig: &Aig, copies: usize) -> Aig {
    let mut out = aig.clone();
    let n = aig.num_inputs();
    let originals: Vec<(String, step_aig::AigLit)> = aig
        .outputs()
        .iter()
        .map(|o| (o.name().to_owned(), o.lit()))
        .collect();
    for j in 1..copies.max(1) {
        let rotate: std::collections::HashMap<_, _> = (0..n)
            .map(|i| (aig.input_node(i), out.input((i + j) % n)))
            .collect();
        for (name, lit) in &originals {
            let twin = out.substitute(*lit, &rotate);
            out.add_output(format!("{name}_p{j}"), twin);
        }
    }
    out
}

/// Extends `aig` with `k − 1` *near-twin* variants of every primary
/// output whose cone has at least two support inputs: variant `j`
/// (added as output `<name>_s<j>`) is the original root XORed with a
/// single AND of two support inputs, rotated through the support so
/// each variant differs.
///
/// A near-twin shares the original's entire cone as substructure and
/// keeps its exact input support — but computes a different function,
/// so its canonical fingerprint differs. That is precisely the
/// population the clause bank's *cluster* channel (keyed on op +
/// support size, clauses vetted before import) targets, and what the
/// exact channel and result cache — both fingerprint-keyed — cannot
/// serve (`gen_circuit --shared-substructure`).
///
/// Variants are pairwise distinct while `k − 1` stays below the cone's
/// support size (the AND rotates through consecutive support pairs);
/// beyond that the rotation wraps and twins may repeat.
pub fn with_shared_substructure(aig: &Aig, k: usize) -> Aig {
    let mut out = aig.clone();
    let originals: Vec<(String, step_aig::AigLit)> = aig
        .outputs()
        .iter()
        .map(|o| (o.name().to_owned(), o.lit()))
        .collect();
    for (name, root) in &originals {
        let support = out.support(*root);
        let m = support.len();
        if m < 2 {
            continue; // constant or single-input cone: no near-twin
        }
        for j in 1..k.max(1) {
            let a = out.input(support[(j - 1) % m]);
            let b = out.input(support[j % m]);
            let bump = out.and(a, b);
            let twin = out.xor(*root, bump);
            out.add_output(format!("{name}_s{j}"), twin);
        }
    }
    out
}

#[cfg(test)]
mod tests;
