//! Named stand-ins for the paper's evaluation circuits.
//!
//! Every row of Tables I/III gets a [`CircuitEntry`] carrying the
//! original circuit statistics (`#In`, `#InM`, `#Out` as printed in
//! Table I) and a deterministic synthetic builder. The builder
//! composes, per primary output, a cone drawn from the circuit's
//! family profile (arithmetic / sequential-control / random-logic),
//! over a sliding input window — reproducing the *population* of
//! decomposable, partially-decomposable and undecomposable cones that
//! the real benchmarks exhibit, at a [`Scale`] the pure-Rust solvers
//! handle in reasonable time. See DESIGN.md §4 for the substitution
//! rationale.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use step_aig::{Aig, AigLit};

/// Generation scale: caps on inputs, per-cone support and outputs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// Tiny circuits for unit tests and CI smoke runs.
    Smoke,
    /// The default for the table/figure harnesses.
    Default,
    /// Larger circuits for `--full` harness runs.
    Full,
}

impl Scale {
    fn caps(self) -> (usize, usize, usize) {
        // (max inputs, max cone support, max outputs)
        match self {
            Scale::Smoke => (12, 8, 4),
            Scale::Default => (24, 12, 8),
            Scale::Full => (64, 20, 24),
        }
    }
}

/// The circuit statistics printed in the paper's Table I.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PaperStats {
    /// `#In`: primary inputs (after `comb`).
    pub inputs: usize,
    /// `#InM`: maximum support among the PO functions.
    pub inm: usize,
    /// `#Out`: PO functions to decompose.
    pub outputs: usize,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Family {
    /// Arithmetic-dominated (ISCAS'85 adders/ALUs, mm9*).
    Arith,
    /// Sequential control converted with `comb` (s-series, ITC b*).
    Seq,
    /// Random/control logic (LGSYNTH, i10, C2670).
    Control,
}

/// A registry entry: a named circuit with paper statistics and a
/// deterministic synthetic builder.
#[derive(Clone, Debug)]
pub struct CircuitEntry {
    /// Circuit name as printed in the paper.
    pub name: &'static str,
    /// Benchmark suite the original came from.
    pub suite: &'static str,
    /// Statistics of the original (Table I).
    pub paper: PaperStats,
    family: Family,
    seed: u64,
}

impl CircuitEntry {
    /// Builds the synthetic stand-in at the given scale. The result is
    /// combinational (the `comb` conversion the paper applies is
    /// already folded in for sequential families).
    ///
    /// Statistics are scaled *proportionally* to the paper's, so the
    /// relative ordering of the rows (C7552 has the widest cones, mm9b
    /// the narrowest, s38417 the most outputs, …) is preserved.
    pub fn build(&self, scale: Scale) -> Aig {
        let (cap_in, cap_sup, cap_out) = scale.caps();
        // Reference maxima over Table I: #In 1664, #InM 194, #Out 1742.
        let n_in = scale_stat(self.paper.inputs, 1664, 6, cap_in);
        let support = scale_stat(self.paper.inm, 194, 4, cap_sup).min(n_in);
        let n_out = scale_stat(self.paper.outputs, 1742, 2, cap_out);
        build_standin(self.family, self.seed, n_in, support, n_out)
    }
}

/// Maps a paper statistic `v ∈ [0, vmax]` into `[lo, hi]`, compressing
/// with a square root so mid-sized circuits stay distinguishable.
fn scale_stat(v: usize, vmax: usize, lo: usize, hi: usize) -> usize {
    let t = ((v.min(vmax) as f64) / vmax as f64).sqrt();
    lo + ((hi - lo) as f64 * t).round() as usize
}

/// The 18 circuits of Tables I and III (`#InM > 30`), in table order.
pub fn registry_table1() -> Vec<CircuitEntry> {
    let rows: [(&'static str, &'static str, usize, usize, usize, Family); 18] = [
        ("C7552", "ISCAS'85", 207, 194, 108, Family::Arith),
        ("s15850.1", "ISCAS'89", 611, 183, 684, Family::Seq),
        ("s38584.1", "ISCAS'89", 1464, 147, 1730, Family::Seq),
        ("C2670", "ISCAS'85", 233, 119, 140, Family::Control),
        ("i10", "LGSYNTH", 257, 108, 224, Family::Control),
        ("s38417", "ISCAS'89", 1664, 99, 1742, Family::Seq),
        ("s9234.1", "ISCAS'89", 247, 83, 250, Family::Seq),
        ("rot", "LGSYNTH", 135, 63, 107, Family::Control),
        ("s5378", "ISCAS'89", 199, 60, 213, Family::Seq),
        ("s1423", "ISCAS'89", 91, 59, 79, Family::Seq),
        ("pair", "LGSYNTH", 173, 53, 137, Family::Control),
        ("C880", "ISCAS'85", 60, 45, 26, Family::Arith),
        ("clma", "LGSYNTH", 415, 42, 115, Family::Control),
        ("ITC b07", "ITC'99", 49, 42, 57, Family::Seq),
        ("ITC b12", "ITC'99", 125, 37, 127, Family::Seq),
        ("sbc", "LGSYNTH", 68, 35, 84, Family::Control),
        ("mm9a", "LGSYNTH", 39, 31, 36, Family::Arith),
        ("mm9b", "LGSYNTH", 38, 31, 35, Family::Arith),
    ];
    rows.iter()
        .enumerate()
        .map(
            |(k, &(name, suite, inputs, inm, outputs, family))| CircuitEntry {
                name,
                suite,
                paper: PaperStats {
                    inputs,
                    inm,
                    outputs,
                },
                family,
                seed: 0xC1C0 + k as u64,
            },
        )
        .collect()
}

/// The full 145-circuit population of Figure 1: the Table I circuits
/// plus 127 smaller synthetic circuits (the paper's rows with
/// `#InM ≤ 30` are not itemized, so these take their place with small
/// statistics).
pub fn registry_all() -> Vec<CircuitEntry> {
    let mut all = registry_table1();
    static SMALL_NAMES: [&str; 127] = {
        // Generated names small001..small127.
        [
            "small001", "small002", "small003", "small004", "small005", "small006", "small007",
            "small008", "small009", "small010", "small011", "small012", "small013", "small014",
            "small015", "small016", "small017", "small018", "small019", "small020", "small021",
            "small022", "small023", "small024", "small025", "small026", "small027", "small028",
            "small029", "small030", "small031", "small032", "small033", "small034", "small035",
            "small036", "small037", "small038", "small039", "small040", "small041", "small042",
            "small043", "small044", "small045", "small046", "small047", "small048", "small049",
            "small050", "small051", "small052", "small053", "small054", "small055", "small056",
            "small057", "small058", "small059", "small060", "small061", "small062", "small063",
            "small064", "small065", "small066", "small067", "small068", "small069", "small070",
            "small071", "small072", "small073", "small074", "small075", "small076", "small077",
            "small078", "small079", "small080", "small081", "small082", "small083", "small084",
            "small085", "small086", "small087", "small088", "small089", "small090", "small091",
            "small092", "small093", "small094", "small095", "small096", "small097", "small098",
            "small099", "small100", "small101", "small102", "small103", "small104", "small105",
            "small106", "small107", "small108", "small109", "small110", "small111", "small112",
            "small113", "small114", "small115", "small116", "small117", "small118", "small119",
            "small120", "small121", "small122", "small123", "small124", "small125", "small126",
            "small127",
        ]
    };
    for (k, name) in SMALL_NAMES.iter().enumerate() {
        let family = match k % 3 {
            0 => Family::Arith,
            1 => Family::Seq,
            _ => Family::Control,
        };
        let inputs = 6 + k % 18;
        let inm = 4 + k % 10;
        let outputs = 1 + k % 6;
        all.push(CircuitEntry {
            name,
            suite: "synthetic",
            paper: PaperStats {
                inputs,
                inm: inm.min(inputs),
                outputs,
            },
            family,
            seed: 0xBEEF + k as u64,
        });
    }
    all
}

// ---------------------------------------------------------------------
// stand-in construction
// ---------------------------------------------------------------------

fn build_standin(family: Family, seed: u64, n_in: usize, support: usize, n_out: usize) -> Aig {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut aig = Aig::new();
    let inputs: Vec<AigLit> = (0..n_in).map(|i| aig.add_input(format!("x{i}"))).collect();
    // Family profiles: a cycle of cone constructors weighted toward
    // the regimes the original circuits exhibit.
    let profile: &[ConeKind] = match family {
        Family::Arith => &[
            ConeKind::DisjointCubes,
            ConeKind::AdderSum,
            ConeKind::SharedCubes,
            ConeKind::Parity,
            ConeKind::Equality,
            ConeKind::AdderCarry,
            ConeKind::RandomSop,
            ConeKind::LessThan,
        ],
        Family::Seq => &[
            ConeKind::DisjointCubes,
            ConeKind::Mux,
            ConeKind::RandomSop,
            ConeKind::SharedCubes,
            ConeKind::Parity,
            ConeKind::Majority,
            ConeKind::RandomDag,
            ConeKind::RandomSop,
        ],
        Family::Control => &[
            ConeKind::RandomSop,
            ConeKind::SharedCubes,
            ConeKind::Mux,
            ConeKind::RandomDag,
            ConeKind::Majority,
            ConeKind::DisjointCubes,
            ConeKind::Equality,
            ConeKind::RandomSop,
        ],
    };
    for k in 0..n_out {
        let kind = profile[k % profile.len()];
        // Sliding window of `support` inputs.
        let w = support.min(n_in);
        let start = (k * 3) % (n_in - w + 1).max(1);
        let window: Vec<AigLit> = inputs[start..start + w].to_vec();
        let cone = build_cone(&mut aig, kind, &window, &mut rng);
        aig.add_output(format!("o{k}"), cone);
    }
    aig
}

#[derive(Clone, Copy, Debug)]
enum ConeKind {
    AdderSum,
    AdderCarry,
    Equality,
    LessThan,
    Parity,
    Mux,
    Majority,
    RandomSop,
    RandomDag,
    DisjointCubes,
    /// Two AND-cubes sharing a small set of window variables:
    /// OR-decomposable with `|XC| ≥ 1`, and with *several* valid
    /// partitions of different quality — the case where the QBF
    /// models beat the heuristics.
    SharedCubes,
}

fn build_cone(aig: &mut Aig, kind: ConeKind, window: &[AigLit], rng: &mut StdRng) -> AigLit {
    let w = window.len();
    match kind {
        ConeKind::AdderSum | ConeKind::AdderCarry => {
            // Interpret the window as interleaved a/b operands.
            let half = w / 2;
            let mut carry = AigLit::FALSE;
            let mut sum = AigLit::FALSE;
            for i in 0..half {
                let a = window[2 * i];
                let b = window[2 * i + 1];
                let axb = aig.xor(a, b);
                sum = aig.xor(axb, carry);
                let ab = aig.and(a, b);
                let axc = aig.and(axb, carry);
                carry = aig.or(ab, axc);
            }
            if matches!(kind, ConeKind::AdderSum) {
                sum
            } else {
                carry
            }
        }
        ConeKind::Equality => {
            let half = w / 2;
            let eqs: Vec<AigLit> = (0..half)
                .map(|i| aig.xnor(window[i], window[half + i]))
                .collect();
            aig.and_many(&eqs)
        }
        ConeKind::LessThan => {
            let half = w / 2;
            let mut lt = AigLit::FALSE;
            for i in 0..half {
                let a = window[i];
                let b = window[half + i];
                let nb = aig.and(!a, b);
                let eq = aig.xnor(a, b);
                let keep = aig.and(eq, lt);
                lt = aig.or(nb, keep);
            }
            lt
        }
        ConeKind::Parity => aig.xor_many(window),
        ConeKind::Mux => {
            // 2 selects + up to 4 data lines from the window.
            if w < 6 {
                return aig.xor_many(window);
            }
            let s0 = window[0];
            let s1 = window[1];
            let d: Vec<AigLit> = window[2..6].to_vec();
            let m0 = aig.mux(s0, d[1], d[0]);
            let m1 = aig.mux(s0, d[3], d[2]);
            aig.mux(s1, m1, m0)
        }
        ConeKind::Majority => {
            let a = window[0];
            let b = window[w / 2];
            let c = window[w - 1];
            let ab = aig.and(a, b);
            let ac = aig.and(a, c);
            let bc = aig.and(b, c);
            let t = aig.or(ab, ac);
            aig.or(t, bc)
        }
        ConeKind::RandomSop => {
            let n_cubes = 2 + rng.gen_range(0..3);
            let cube_w = (w / 2).clamp(2, 4);
            let mut cubes = Vec::with_capacity(n_cubes);
            for _ in 0..n_cubes {
                let lits: Vec<AigLit> = (0..cube_w)
                    .map(|_| {
                        let v = window[rng.gen_range(0..w)];
                        v.xor_complement(rng.gen_bool(0.5))
                    })
                    .collect();
                cubes.push(aig.and_many(&lits));
            }
            aig.or_many(&cubes)
        }
        ConeKind::RandomDag => {
            let mut pool = window.to_vec();
            for _ in 0..w * 2 {
                let a = pool[rng.gen_range(0..pool.len())];
                let b = pool[rng.gen_range(0..pool.len())];
                let v = match rng.gen_range(0..3u8) {
                    0 => aig.and(a, b),
                    1 => aig.or(a, b),
                    _ => aig.xor(a, b),
                };
                pool.push(v);
            }
            *pool.last().expect("non-empty pool")
        }
        ConeKind::DisjointCubes => {
            // OR of AND-cubes over disjoint window halves: guaranteed
            // disjointly OR-decomposable.
            let half = (w / 2).max(1);
            let c1 = aig.and_many(&window[..half]);
            let c2 = aig.and_many(&window[half..]);
            aig.or(c1, c2)
        }
        ConeKind::SharedCubes => {
            // (s ∧ left-cube) ∨ (s ∧ right-cube) ∨ small extra cube:
            // OR-decomposable with the shared variable(s) in XC; the
            // extra cube creates several valid partitions of unequal
            // disjointness/balance.
            if w < 5 {
                let half = (w / 2).max(1);
                let c1 = aig.and_many(&window[..half]);
                let c2 = aig.and_many(&window[half..]);
                return aig.or(c1, c2);
            }
            let s = window[0];
            let rest = &window[1..];
            let half = rest.len() / 2;
            let left = aig.and_many(&rest[..half]);
            let right = aig.and_many(&rest[half..]);
            let c1 = aig.and(s, left);
            let c2 = aig.and(s, right);
            let extra = aig.and(rest[0], rest[1]);
            let t = aig.or(c1, c2);
            let pick = rng.gen_bool(0.5);
            if pick {
                aig.or(t, extra)
            } else {
                t
            }
        }
    }
}
