//! Parameterized structural circuit generators.
//!
//! Every generator returns a self-contained [`Aig`] with named inputs
//! and outputs. The families are chosen so their primary-output cones
//! exercise the decomposability regimes of the paper's benchmarks:
//!
//! | family | cone behaviour |
//! |---|---|
//! | [`ripple_adder`] sums | XOR-decomposable chains, growing support |
//! | [`ripple_adder`] carry | OR-decomposable with shared variables |
//! | [`equality_comparator`] | disjointly AND-decomposable |
//! | [`less_than_comparator`] | OR-decomposable with shared tail |
//! | [`parity`] | disjointly XOR-decomposable at every split |
//! | [`decoder`] | disjointly AND-decomposable minterms |
//! | [`mux_tree`] | shared select variables (`XC` pressure) |
//! | [`majority`] | **not** bi-decomposable (control-dominated) |
//! | [`random_dag`] | mixed, like LGSYNTH control logic |
//! | [`array_multiplier`] | large mixed-regime arithmetic cones |
//! | [`lfsr`], [`counter`] | sequential: exercised through `comb()` |

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use step_aig::{Aig, AigLit};

fn input_vec(aig: &mut Aig, name: &str, n: usize) -> Vec<AigLit> {
    (0..n)
        .map(|i| aig.add_input(format!("{name}{i}")))
        .collect()
}

/// Full adder on three bits: returns `(sum, carry)`.
fn full_adder(aig: &mut Aig, a: AigLit, b: AigLit, c: AigLit) -> (AigLit, AigLit) {
    let axb = aig.xor(a, b);
    let sum = aig.xor(axb, c);
    let ab = aig.and(a, b);
    let axb_c = aig.and(axb, c);
    let carry = aig.or(ab, axb_c);
    (sum, carry)
}

/// An `n`-bit ripple-carry adder: inputs `a0..`, `b0..`, `cin`;
/// outputs `s0..`, `cout`.
pub fn ripple_adder(n: usize) -> Aig {
    let mut aig = Aig::new();
    let a = input_vec(&mut aig, "a", n);
    let b = input_vec(&mut aig, "b", n);
    let mut carry = aig.add_input("cin");
    let mut sums = Vec::with_capacity(n);
    for i in 0..n {
        let (s, c) = full_adder(&mut aig, a[i], b[i], carry);
        sums.push(s);
        carry = c;
    }
    for (i, s) in sums.into_iter().enumerate() {
        aig.add_output(format!("s{i}"), s);
    }
    aig.add_output("cout", carry);
    aig
}

/// An `n×n` array multiplier: inputs `a0..`, `b0..`; outputs `p0..p2n-1`.
pub fn array_multiplier(n: usize) -> Aig {
    let mut aig = Aig::new();
    let a = input_vec(&mut aig, "a", n);
    let b = input_vec(&mut aig, "b", n);
    // Partial products accumulated column-wise with full adders.
    let mut columns: Vec<Vec<AigLit>> = vec![Vec::new(); 2 * n];
    for i in 0..n {
        for j in 0..n {
            let pp = aig.and(a[i], b[j]);
            columns[i + j].push(pp);
        }
    }
    let mut outputs = Vec::with_capacity(2 * n);
    for col in 0..2 * n {
        let mut bits = std::mem::take(&mut columns[col]);
        while bits.len() > 1 {
            if bits.len() == 2 {
                let (s, c) = {
                    let x = bits[0];
                    let y = bits[1];
                    let s = aig.xor(x, y);
                    let c = aig.and(x, y);
                    (s, c)
                };
                bits = vec![s];
                if col + 1 < 2 * n {
                    columns[col + 1].push(c);
                }
            } else {
                let (x, y, z) = (bits[0], bits[1], bits[2]);
                let (s, c) = full_adder(&mut aig, x, y, z);
                let mut rest = bits.split_off(3);
                rest.push(s);
                bits = rest;
                if col + 1 < 2 * n {
                    columns[col + 1].push(c);
                }
            }
        }
        outputs.push(bits.first().copied().unwrap_or(AigLit::FALSE));
    }
    for (i, p) in outputs.into_iter().enumerate() {
        aig.add_output(format!("p{i}"), p);
    }
    aig
}

/// An `n`-bit equality comparator: output `eq = ∧ (aᵢ ≡ bᵢ)` —
/// disjointly AND-decomposable at every split.
pub fn equality_comparator(n: usize) -> Aig {
    let mut aig = Aig::new();
    let a = input_vec(&mut aig, "a", n);
    let b = input_vec(&mut aig, "b", n);
    let eqs: Vec<AigLit> = (0..n).map(|i| aig.xnor(a[i], b[i])).collect();
    let eq = aig.and_many(&eqs);
    aig.add_output("eq", eq);
    aig
}

/// An `n`-bit unsigned less-than comparator: output `lt = (a < b)`.
pub fn less_than_comparator(n: usize) -> Aig {
    let mut aig = Aig::new();
    let a = input_vec(&mut aig, "a", n);
    let b = input_vec(&mut aig, "b", n);
    // lt_i: a[i..] < b[i..]; built MSB-down.
    let mut lt = AigLit::FALSE;
    for i in 0..n {
        // Process from LSB to MSB: lt = (¬a∧b) ∨ ((a≡b) ∧ lt).
        let nb = aig.and(!a[i], b[i]);
        let eq = aig.xnor(a[i], b[i]);
        let keep = aig.and(eq, lt);
        lt = aig.or(nb, keep);
    }
    aig.add_output("lt", lt);
    aig
}

/// An `n`-input parity (XOR) tree: disjointly XOR-decomposable.
pub fn parity(n: usize) -> Aig {
    let mut aig = Aig::new();
    let x = input_vec(&mut aig, "x", n);
    let p = aig.xor_many(&x);
    aig.add_output("parity", p);
    aig
}

/// An `n`-to-`2^n` decoder: each output is a minterm of the inputs.
pub fn decoder(n: usize) -> Aig {
    let mut aig = Aig::new();
    let x = input_vec(&mut aig, "x", n);
    for m in 0..1usize << n {
        let lits: Vec<AigLit> = (0..n)
            .map(|i| x[i].xor_complement(m >> i & 1 == 0))
            .collect();
        let minterm = aig.and_many(&lits);
        aig.add_output(format!("d{m}"), minterm);
    }
    aig
}

/// A multiplexer tree with `k` select bits and `2^k` data inputs — the
/// selects end up shared between any partition (high `XC` pressure).
pub fn mux_tree(k: usize) -> Aig {
    let mut aig = Aig::new();
    let sel = input_vec(&mut aig, "s", k);
    let data = input_vec(&mut aig, "d", 1 << k);
    let mut layer = data;
    for s in sel {
        let mut next = Vec::with_capacity(layer.len() / 2);
        for pair in layer.chunks(2) {
            next.push(aig.mux(s, pair[1], pair[0]));
        }
        layer = next;
    }
    aig.add_output("y", layer[0]);
    aig
}

/// Majority of `n` (odd) inputs — not bi-decomposable for any operator
/// when `n = 3`, and control-dominated in general.
pub fn majority(n: usize) -> Aig {
    assert!(n % 2 == 1, "majority needs an odd input count");
    let mut aig = Aig::new();
    let x = input_vec(&mut aig, "x", n);
    // Sum the bits with a small counter and compare against n/2.
    // For moderate n a cube-based majority is fine.
    let threshold = n / 2 + 1;
    let mut terms = Vec::new();
    let mut idx: Vec<usize> = (0..threshold).collect();
    loop {
        let lits: Vec<AigLit> = idx.iter().map(|&i| x[i]).collect();
        terms.push(aig.and_many(&lits));
        // Next combination of size `threshold`.
        let mut i = threshold;
        loop {
            if i == 0 {
                let maj = aig.or_many(&terms);
                aig.add_output("maj", maj);
                return aig;
            }
            i -= 1;
            if idx[i] != i + n - threshold {
                break;
            }
            if i == 0 {
                let maj = aig.or_many(&terms);
                aig.add_output("maj", maj);
                return aig;
            }
        }
        idx[i] += 1;
        for j in i + 1..threshold {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

/// A random AIG DAG over `n_in` inputs with `n_gates` gates and one
/// output per `outs` gates from the end (deterministic in `seed`).
pub fn random_dag(n_in: usize, n_gates: usize, outs: usize, seed: u64) -> Aig {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut aig = Aig::new();
    let mut pool: Vec<AigLit> = input_vec(&mut aig, "x", n_in);
    for _ in 0..n_gates {
        let a = pool[rng.gen_range(0..pool.len())];
        let b = pool[rng.gen_range(0..pool.len())];
        let v = match rng.gen_range(0..4u8) {
            0 => aig.and(a, b),
            1 => aig.or(a, b),
            2 => aig.xor(a, b),
            _ => {
                let c = pool[rng.gen_range(0..pool.len())];
                aig.mux(a, b, c)
            }
        };
        pool.push(v);
    }
    let outs = outs.max(1);
    for k in 0..outs {
        let lit = pool[pool.len() - 1 - (k * 7 % pool.len().min(n_gates.max(1)))];
        aig.add_output(format!("o{k}"), lit);
    }
    aig
}

/// A random sum-of-products function: `n_cubes` cubes of width
/// `cube_width` over `n_in` inputs — OR-decomposable whenever two cube
/// groups have (nearly) disjoint support.
pub fn random_sop(n_in: usize, n_cubes: usize, cube_width: usize, seed: u64) -> Aig {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut aig = Aig::new();
    let x = input_vec(&mut aig, "x", n_in);
    let mut cubes = Vec::with_capacity(n_cubes);
    for _ in 0..n_cubes {
        let mut lits = Vec::with_capacity(cube_width);
        for _ in 0..cube_width {
            let v = x[rng.gen_range(0..n_in)];
            lits.push(v.xor_complement(rng.gen_bool(0.5)));
        }
        cubes.push(aig.and_many(&lits));
    }
    let f = aig.or_many(&cubes);
    aig.add_output("sop", f);
    aig
}

/// An OR of AND-cubes over *disjoint* input windows — guaranteed
/// disjointly OR-decomposable, with known optimum metrics (used by the
/// expected-shape tests).
pub fn disjoint_or(widths: &[usize]) -> Aig {
    let mut aig = Aig::new();
    let mut terms = Vec::with_capacity(widths.len());
    for (k, &w) in widths.iter().enumerate() {
        let ins = input_vec(&mut aig, &format!("g{k}_x"), w);
        terms.push(aig.and_many(&ins));
    }
    let f = aig.or_many(&terms);
    aig.add_output("f", f);
    aig
}

/// An `n`-bit LFSR with the given feedback taps (sequential; convert
/// with `comb()` for decomposition, as the paper does).
pub fn lfsr(n: usize, taps: &[usize]) -> Aig {
    let mut aig = Aig::new();
    let en = aig.add_input("en");
    let q: Vec<AigLit> = (0..n)
        .map(|i| aig.add_latch(format!("q{i}"), i == 0))
        .collect();
    let fb_taps: Vec<AigLit> = taps.iter().map(|&t| q[t % n]).collect();
    let fb = aig.xor_many(&fb_taps);
    for i in 0..n {
        let shifted = if i == 0 { fb } else { q[i - 1] };
        let next = aig.mux(en, shifted, q[i]);
        aig.set_latch_next(i, next).expect("latch exists");
    }
    aig.add_output("msb", q[n - 1]);
    aig
}

/// An `n`-bit synchronous counter with enable and synchronous clear.
pub fn counter(n: usize) -> Aig {
    let mut aig = Aig::new();
    let en = aig.add_input("en");
    let clr = aig.add_input("clr");
    let q: Vec<AigLit> = (0..n)
        .map(|i| aig.add_latch(format!("q{i}"), false))
        .collect();
    let mut carry = en;
    for i in 0..n {
        let toggled = aig.xor(q[i], carry);
        carry = aig.and(carry, q[i]);
        let next = aig.and(toggled, !clr);
        aig.set_latch_next(i, next).expect("latch exists");
    }
    aig.add_output("tc", carry);
    aig
}

/// An `n`-input priority encoder: outputs the one-hot grant vector
/// (`gi` = request `i` is the highest-priority active request).
pub fn priority_encoder(n: usize) -> Aig {
    let mut aig = Aig::new();
    let req = input_vec(&mut aig, "r", n);
    let mut none_higher = AigLit::TRUE;
    for i in 0..n {
        let grant = aig.and(req[i], none_higher);
        aig.add_output(format!("g{i}"), grant);
        none_higher = aig.and(none_higher, !req[i]);
    }
    aig
}

/// A logical-left barrel shifter: `2^k`-bit data, `k`-bit shift amount.
pub fn barrel_shifter(k: usize) -> Aig {
    let mut aig = Aig::new();
    let w = 1usize << k;
    let data = input_vec(&mut aig, "d", w);
    let sh = input_vec(&mut aig, "s", k);
    let mut layer = data;
    for (stage, &s) in sh.iter().enumerate() {
        let dist = 1usize << stage;
        let mut next = Vec::with_capacity(w);
        for i in 0..w {
            let shifted = if i >= dist {
                layer[i - dist]
            } else {
                AigLit::FALSE
            };
            next.push(aig.mux(s, shifted, layer[i]));
        }
        layer = next;
    }
    for (i, bit) in layer.into_iter().enumerate() {
        aig.add_output(format!("y{i}"), bit);
    }
    aig
}

/// An `n`-bit carry-lookahead adder (two-level generate/propagate):
/// same function as [`ripple_adder`], different structure — useful for
/// structural-robustness tests.
pub fn carry_lookahead_adder(n: usize) -> Aig {
    let mut aig = Aig::new();
    let a = input_vec(&mut aig, "a", n);
    let b = input_vec(&mut aig, "b", n);
    let cin = aig.add_input("cin");
    let g: Vec<AigLit> = (0..n).map(|i| aig.and(a[i], b[i])).collect();
    let p: Vec<AigLit> = (0..n).map(|i| aig.xor(a[i], b[i])).collect();
    // c[i+1] = g[i] ∨ (p[i] ∧ c[i]), flattened.
    let mut carries = vec![cin];
    for i in 0..n {
        // c_{i+1} = g_i ∨ p_i g_{i-1} ∨ … ∨ p_i…p_0 cin
        let mut terms = vec![g[i]];
        let mut prefix = p[i];
        for j in (0..i).rev() {
            terms.push(aig.and(prefix, g[j]));
            prefix = aig.and(prefix, p[j]);
        }
        terms.push(aig.and(prefix, cin));
        carries.push(aig.or_many(&terms));
    }
    for i in 0..n {
        let s = aig.xor(p[i], carries[i]);
        aig.add_output(format!("s{i}"), s);
    }
    aig.add_output("cout", carries[n]);
    aig
}

/// A small ALU: two `n`-bit operands, 2-bit opcode selecting
/// ADD / AND / OR / XOR; outputs the `n`-bit result.
pub fn alu(n: usize) -> Aig {
    let mut aig = Aig::new();
    let a = input_vec(&mut aig, "a", n);
    let b = input_vec(&mut aig, "b", n);
    let op0 = aig.add_input("op0");
    let op1 = aig.add_input("op1");
    let mut carry = AigLit::FALSE;
    for i in 0..n {
        let (sum, c) = full_adder(&mut aig, a[i], b[i], carry);
        carry = c;
        let and = aig.and(a[i], b[i]);
        let or = aig.or(a[i], b[i]);
        let xor = aig.xor(a[i], b[i]);
        let sel0 = aig.mux(op0, and, sum);
        let sel1 = aig.mux(op0, xor, or);
        let y = aig.mux(op1, sel1, sel0);
        aig.add_output(format!("y{i}"), y);
    }
    aig
}
