//! `gen_circuit` — dumps a registry stand-in circuit to stdout so the
//! `step` CLI (and CI) can run on the exact circuits the evaluation
//! harness uses.
//!
//! ```text
//! gen_circuit <name> [--scale smoke|default|full] [--format bench|blif]
//!             [--copies k] [--shared-substructure k] [--list]
//! ```
//!
//! `<name>` is a registry entry (`C7552`, `mm9a`, `small042`, …; see
//! `--list`). The default format is BENCH, which `step` reads back
//! directly. `--copies k` appends `k−1` permuted-input twins of every
//! output cone (see [`step_circuits::with_permuted_copies`]) — the
//! repeated-cone population the engine's result cache exploits, used
//! by the CI cache smoke step. `--shared-substructure k` then appends
//! `k−1` *near-twin* variants of every output (same support, shared
//! subcones, different function — see
//! [`step_circuits::with_shared_substructure`]), the population the
//! clause bank's cluster channel reuses across; combined with
//! `--copies` it stresses both reuse channels at once.

use step_circuits::{registry_all, with_permuted_copies, with_shared_substructure, Scale};

const USAGE: &str = "usage: gen_circuit <name> [--scale smoke|default|full] \
                     [--format bench|blif] [--copies k] [--shared-substructure k] [--list]";

fn usage() -> ! {
    eprintln!("{USAGE}");
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut name: Option<String> = None;
    let mut scale = Scale::Default;
    let mut blif = false;
    let mut list = false;
    let mut copies = 1usize;
    let mut shared = 1usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = match args.get(i).map(String::as_str) {
                    Some("smoke") => Scale::Smoke,
                    Some("default") => Scale::Default,
                    Some("full") => Scale::Full,
                    _ => usage(),
                };
            }
            "--format" => {
                i += 1;
                blif = match args.get(i).map(String::as_str) {
                    Some("bench") => false,
                    Some("blif") => true,
                    _ => usage(),
                };
            }
            "--copies" => {
                i += 1;
                copies = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(k) if k >= 1 => k,
                    _ => usage(),
                };
            }
            "--shared-substructure" => {
                i += 1;
                shared = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(k) if k >= 1 => k,
                    _ => usage(),
                };
            }
            "--list" => list = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other if name.is_none() && !other.starts_with('-') => name = Some(other.to_owned()),
            _ => usage(),
        }
        i += 1;
    }

    let entries = registry_all();
    if list {
        for e in &entries {
            let aig = e.build(scale);
            println!(
                "{:<12} {:<10} {:>4} inputs {:>4} outputs {:>6} ANDs",
                e.name,
                e.suite,
                aig.num_inputs(),
                aig.num_outputs(),
                aig.and_count()
            );
        }
        return;
    }
    let Some(name) = name else { usage() };
    let Some(entry) = entries.iter().find(|e| e.name == name) else {
        eprintln!("unknown circuit {name:?} (try --list)");
        std::process::exit(1);
    };
    let mut aig = entry.build(scale);
    if copies > 1 {
        aig = with_permuted_copies(&aig, copies);
    }
    if shared > 1 {
        // After --copies, so every permuted twin gets near-twins too:
        // exact-channel and cluster-channel populations in one circuit.
        aig = with_shared_substructure(&aig, shared);
    }
    if blif {
        print!("{}", step_aig::blif::write(&aig, entry.name));
    } else {
        print!("{}", step_aig::bench_io::write(&aig));
    }
}
