use crate::generators::*;
use crate::registry::{registry_all, registry_table1, Scale};

fn to_u64(bits: &[bool]) -> u64 {
    bits.iter()
        .enumerate()
        .fold(0u64, |acc, (i, &b)| acc | (u64::from(b)) << i)
}

fn from_u64(v: u64, n: usize) -> Vec<bool> {
    (0..n).map(|i| v >> i & 1 == 1).collect()
}

#[test]
fn ripple_adder_adds() {
    let n = 4;
    let aig = ripple_adder(n);
    for a in 0..1u64 << n {
        for b in 0..1u64 << n {
            for cin in 0..2u64 {
                let mut ins = from_u64(a, n);
                ins.extend(from_u64(b, n));
                ins.push(cin == 1);
                let outs = aig.eval(&ins);
                let got = to_u64(&outs);
                assert_eq!(got, a + b + cin, "a={a} b={b} cin={cin}");
            }
        }
    }
}

#[test]
fn array_multiplier_multiplies() {
    let n = 3;
    let aig = array_multiplier(n);
    assert_eq!(aig.num_outputs(), 2 * n);
    for a in 0..1u64 << n {
        for b in 0..1u64 << n {
            let mut ins = from_u64(a, n);
            ins.extend(from_u64(b, n));
            let outs = aig.eval(&ins);
            assert_eq!(to_u64(&outs), a * b, "a={a} b={b}");
        }
    }
}

#[test]
fn comparators_compare() {
    let n = 3;
    let eq = equality_comparator(n);
    let lt = less_than_comparator(n);
    for a in 0..1u64 << n {
        for b in 0..1u64 << n {
            let mut ins = from_u64(a, n);
            ins.extend(from_u64(b, n));
            assert_eq!(eq.eval(&ins)[0], a == b, "eq a={a} b={b}");
            assert_eq!(lt.eval(&ins)[0], a < b, "lt a={a} b={b}");
        }
    }
}

#[test]
fn parity_is_parity() {
    let n = 5;
    let aig = parity(n);
    for m in 0..1u64 << n {
        let ins = from_u64(m, n);
        assert_eq!(aig.eval(&ins)[0], m.count_ones() % 2 == 1);
    }
}

#[test]
fn decoder_is_one_hot() {
    let n = 3;
    let aig = decoder(n);
    assert_eq!(aig.num_outputs(), 8);
    for m in 0..1u64 << n {
        let outs = aig.eval(&from_u64(m, n));
        for (k, &o) in outs.iter().enumerate() {
            assert_eq!(o, k as u64 == m);
        }
    }
}

#[test]
fn mux_tree_selects() {
    let k = 2;
    let aig = mux_tree(k);
    // Inputs: s0, s1, then d0..d3.
    for sel in 0..4u64 {
        for data in 0..16u64 {
            let mut ins = from_u64(sel, k);
            ins.extend(from_u64(data, 4));
            let out = aig.eval(&ins)[0];
            assert_eq!(out, data >> sel & 1 == 1, "sel={sel} data={data:04b}");
        }
    }
}

#[test]
fn majority_votes() {
    let aig = majority(5);
    for m in 0..32u64 {
        let ins = from_u64(m, 5);
        assert_eq!(aig.eval(&ins)[0], m.count_ones() >= 3, "m={m:05b}");
    }
}

#[test]
fn alu_ops() {
    let n = 3;
    let aig = alu(n);
    let mask = (1u64 << n) - 1;
    for a in 0..1u64 << n {
        for b in 0..1u64 << n {
            for op in 0..4u64 {
                let mut ins = from_u64(a, n);
                ins.extend(from_u64(b, n));
                ins.push(op & 1 == 1);
                ins.push(op >> 1 & 1 == 1);
                let out = to_u64(&aig.eval(&ins));
                let want = match op {
                    0 => (a + b) & mask,
                    1 => a & b,
                    2 => a | b,
                    _ => a ^ b,
                };
                assert_eq!(out, want, "op={op} a={a} b={b}");
            }
        }
    }
}

#[test]
fn priority_encoder_grants_highest_priority() {
    let n = 4;
    let aig = priority_encoder(n);
    for m in 0..1u64 << n {
        let ins = from_u64(m, n);
        let outs = aig.eval(&ins);
        let first = (0..n).find(|&i| m >> i & 1 == 1);
        for (i, &g) in outs.iter().enumerate() {
            assert_eq!(g, Some(i) == first, "m={m:04b} g{i}");
        }
    }
}

#[test]
fn barrel_shifter_shifts() {
    let k = 2;
    let w = 4;
    let aig = barrel_shifter(k);
    for data in 0..1u64 << w {
        for sh in 0..1u64 << k {
            let mut ins = from_u64(data, w);
            ins.extend(from_u64(sh, k));
            let out = to_u64(&aig.eval(&ins));
            assert_eq!(out, (data << sh) & 0xF, "data={data:04b} sh={sh}");
        }
    }
}

#[test]
fn carry_lookahead_matches_ripple() {
    let n = 4;
    let cla = carry_lookahead_adder(n);
    let rip = ripple_adder(n);
    for a in 0..1u64 << n {
        for b in 0..1u64 << n {
            for cin in 0..2u64 {
                let mut ins = from_u64(a, n);
                ins.extend(from_u64(b, n));
                ins.push(cin == 1);
                assert_eq!(cla.eval(&ins), rip.eval(&ins), "a={a} b={b} cin={cin}");
            }
        }
    }
}

#[test]
fn lfsr_shifts_when_enabled() {
    let aig = lfsr(4, &[0, 3]);
    assert_eq!(aig.latches().len(), 4);
    let state = vec![true, false, false, false];
    let (_, next) = aig.eval_seq_step(&[true], &state);
    // Shift: q1 <- q0, q2 <- q1, q3 <- q2, q0 <- q0 XOR q3.
    assert_eq!(next[1], state[0]);
    assert_eq!(next[2], state[1]);
    assert_eq!(next[3], state[2]);
    assert_eq!(next[0], state[0] ^ state[3]);
    // Disabled: state holds.
    let (_, hold) = aig.eval_seq_step(&[false], &state);
    assert_eq!(hold, state);
}

#[test]
fn counter_counts() {
    let n = 3;
    let aig = counter(n);
    let mut state = vec![false; n];
    for step in 1..10u64 {
        let (_, next) = aig.eval_seq_step(&[true, false], &state);
        state = next;
        assert_eq!(to_u64(&state), step % 8, "step {step}");
    }
    // Clear wins.
    let (_, cleared) = aig.eval_seq_step(&[true, true], &state);
    assert_eq!(to_u64(&cleared), 0);
}

#[test]
fn random_generators_are_deterministic() {
    let a = random_dag(6, 30, 3, 42);
    let b = random_dag(6, 30, 3, 42);
    let c = random_dag(6, 30, 3, 43);
    assert_eq!(step_aig::aiger::write(&a), step_aig::aiger::write(&b));
    assert_ne!(step_aig::aiger::write(&a), step_aig::aiger::write(&c));
    let s = random_sop(8, 5, 3, 7);
    let s2 = random_sop(8, 5, 3, 7);
    assert_eq!(step_aig::aiger::write(&s), step_aig::aiger::write(&s2));
}

#[test]
fn disjoint_or_structure() {
    let aig = disjoint_or(&[2, 3]);
    assert_eq!(aig.num_inputs(), 5);
    let ins = vec![true, true, false, false, false];
    assert!(aig.eval(&ins)[0], "first cube set");
    let ins = vec![false, true, true, true, true];
    assert!(aig.eval(&ins)[0], "second cube set");
    let ins = vec![false, true, true, false, true];
    assert!(!aig.eval(&ins)[0]);
}

// ---------------------------------------------------------------------
// registry
// ---------------------------------------------------------------------

#[test]
fn registry_matches_paper_rows() {
    let reg = registry_table1();
    assert_eq!(reg.len(), 18);
    assert_eq!(reg[0].name, "C7552");
    assert_eq!(reg[0].paper.inputs, 207);
    assert_eq!(reg[0].paper.inm, 194);
    assert_eq!(reg[0].paper.outputs, 108);
    assert_eq!(reg[17].name, "mm9b");
    // Table I is sorted by decreasing #InM.
    for w in reg.windows(2) {
        assert!(w[0].paper.inm >= w[1].paper.inm);
    }
}

#[test]
fn registry_all_has_145_circuits() {
    let all = registry_all();
    assert_eq!(all.len(), 145, "Figure 1 population");
    let mut names: Vec<&str> = all.iter().map(|e| e.name).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), 145, "names must be unique");
}

#[test]
fn standins_build_and_respect_caps() {
    for scale in [Scale::Smoke, Scale::Default] {
        let (cap_in, cap_sup, cap_out) = match scale {
            Scale::Smoke => (12, 8, 4),
            Scale::Default => (24, 12, 8),
            Scale::Full => unreachable!(),
        };
        for entry in registry_table1() {
            let aig = entry.build(scale);
            assert!(aig.is_comb(), "{}: stand-ins are combinational", entry.name);
            assert!(aig.num_inputs() <= cap_in, "{}", entry.name);
            assert!(aig.num_outputs() <= cap_out, "{}", entry.name);
            assert!(aig.num_outputs() >= 1);
            for o in aig.outputs() {
                assert!(
                    aig.support(o.lit()).len() <= cap_sup,
                    "{}: cone support exceeds cap",
                    entry.name
                );
            }
        }
    }
}

#[test]
fn standins_are_deterministic() {
    let e = &registry_table1()[0];
    let a = e.build(Scale::Default);
    let b = e.build(Scale::Default);
    assert_eq!(step_aig::aiger::write(&a), step_aig::aiger::write(&b));
}

#[test]
fn load_file_rejects_unknown_extension() {
    let p = std::path::Path::new("/tmp/who.xyz");
    assert!(crate::load_file(p).is_err());
}

#[test]
fn load_file_parses_bench() {
    let dir = std::env::temp_dir().join("step_circuits_test");
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join("c17.bench");
    std::fs::write(&p, "INPUT(a)\nINPUT(b)\nOUTPUT(f)\nf = NAND(a, b)\n").unwrap();
    let aig = crate::load_file(&p).unwrap();
    assert_eq!(aig.num_inputs(), 2);
    assert_eq!(aig.eval(&[true, true]), vec![false]);
}

#[test]
fn shared_substructure_twins_share_support_but_not_fingerprints() {
    let e = &registry_table1()[16]; // mm9a: small
    let base = e.build(Scale::Smoke);
    let n_out = base.num_outputs();
    let grown = crate::with_shared_substructure(&base, 3);
    assert_eq!(grown.num_inputs(), base.num_inputs());
    assert!(grown.num_outputs() > n_out, "near-twins were planted");
    for (k, out) in grown.outputs().iter().enumerate().skip(n_out) {
        assert!(out.name().contains("_s"), "near-twin names are tagged");
        let original = grown
            .outputs()
            .iter()
            .take(n_out)
            .find(|o| out.name().starts_with(&format!("{}_s", o.name())))
            .unwrap_or_else(|| panic!("no original for near-twin {}", out.name()));
        // Same input support (the cluster-channel key) ...
        assert_eq!(
            grown.support(out.lit()),
            grown.support(original.lit()),
            "near-twin {} must keep its original's support",
            out.name()
        );
        // ... but a different function, hence a different fingerprint
        // (the exact channel and result cache must both miss).
        let cone = grown.cone(out.lit());
        let orig_cone = grown.cone(original.lit());
        assert_ne!(
            step_aig::canonicalize(&cone.aig, cone.root).fingerprint,
            step_aig::canonicalize(&orig_cone.aig, orig_cone.root).fingerprint,
            "near-twin {} must not be a structural twin of {} (k={k})",
            out.name(),
            original.name()
        );
    }
    // Original outputs are untouched: the grown circuit computes the
    // same functions on its shared inputs.
    for trial in 0..16u64 {
        let bits: Vec<bool> = (0..base.num_inputs())
            .map(|i| (trial >> (i % 64)) & 1 == 1)
            .collect();
        assert_eq!(grown.eval(&bits)[..n_out], base.eval(&bits)[..]);
    }
}

#[test]
fn permuted_copies_are_fingerprint_twins_of_their_originals() {
    let e = &registry_table1()[16]; // mm9a: small
    let base = e.build(Scale::Smoke);
    let tripled = crate::with_permuted_copies(&base, 3);
    let n_out = base.num_outputs();
    assert_eq!(tripled.num_outputs(), 3 * n_out);
    assert_eq!(tripled.num_inputs(), base.num_inputs());
    for (k, out) in tripled.outputs().iter().enumerate().skip(n_out) {
        let original = &tripled.outputs()[k % n_out];
        assert!(out.name().contains("_p"), "copy names are tagged");
        let cone = tripled.cone(out.lit());
        let orig_cone = tripled.cone(original.lit());
        assert_eq!(
            step_aig::canonicalize(&cone.aig, cone.root).fingerprint,
            step_aig::canonicalize(&orig_cone.aig, orig_cone.root).fingerprint,
            "output {} must be a structural twin of {}",
            out.name(),
            original.name()
        );
    }
}
