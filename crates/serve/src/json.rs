//! A minimal JSON reader/writer for the wire protocol — std-only, no
//! external crates (the repo's dependency policy bars crates.io).
//!
//! Numbers are kept as **raw text** in both directions: the writer
//! emits `u64`/`f64` through their `Display` impls (Rust's `f64`
//! display is shortest-round-trip), and the reader stores the lexeme
//! untouched until an accessor parses it. That is what lets the client
//! reprint server-measured `disjointness`/`balancedness` values
//! byte-identically to an in-process run: no intermediate decimal
//! representation is ever re-rounded.

use std::fmt::Write as _;

/// Maximum nesting depth the parser accepts — the protocol uses flat
/// objects, so anything deep is garbage (or an attack), not a frame.
const MAX_DEPTH: u32 = 16;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw lexeme (see module docs).
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in insertion order (duplicate keys: last wins on
    /// [`get`](Value::get) lookups never happens — `get` returns the
    /// first match; the protocol never emits duplicates).
    Obj(Vec<(String, Value)>),
}

/// A malformed-JSON verdict with a byte offset for diagnostics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input where it went wrong.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl Value {
    /// Parses one JSON document (trailing non-whitespace is an error).
    ///
    /// # Errors
    ///
    /// [`JsonError`] on any syntax violation, nesting deeper than 16
    /// levels, or trailing garbage.
    pub fn parse(text: &str) -> Result<Value, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing garbage"));
        }
        Ok(v)
    }

    /// Object field lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number parsed as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number parsed as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// Renders the value back to compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Num(raw) => out.push_str(raw),
            Value::Str(s) => write_escaped(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Convenience constructor: an object from `(key, value)` pairs.
pub fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

/// Convenience constructor: a string value.
pub fn s(text: &str) -> Value {
    Value::Str(text.to_owned())
}

/// Convenience constructor: a `u64` number value.
pub fn num(n: u64) -> Value {
    Value::Num(n.to_string())
}

/// Convenience constructor: an `f64` number value (must be finite —
/// JSON has no NaN/Inf; the protocol only carries metrics in `[0,1]`).
pub fn float(x: f64) -> Value {
    debug_assert!(x.is_finite(), "JSON has no non-finite numbers");
    Value::Num(format!("{x}"))
}

/// Convenience constructor: a boolean value.
pub fn boolean(b: bool) -> Value {
    Value::Bool(b)
}

fn write_escaped(text: &str, out: &mut String) {
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn value(&mut self, depth: u32) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("unexpected character"))
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let digits_from = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        if self.pos == digits_from {
            return Err(self.err("malformed number"));
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii lexeme");
        // Validate by the strictest consumer we have; the raw lexeme is
        // what gets stored (see module docs).
        if raw.parse::<f64>().is_err() {
            return Err(self.err("malformed number"));
        }
        Ok(Value::Num(raw.to_owned()))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        debug_assert_eq!(self.bytes.get(self.pos), Some(&b'"'));
        self.pos += 1;
        let mut out = String::new();
        let mut run = self.pos;
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    out.push_str(self.utf8_run(run)?);
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    out.push_str(self.utf8_run(run)?);
                    self.pos += 1;
                    let c = match self.bytes.get(self.pos) {
                        Some(b'"') => '"',
                        Some(b'\\') => '\\',
                        Some(b'/') => '/',
                        Some(b'b') => '\u{8}',
                        Some(b'f') => '\u{c}',
                        Some(b'n') => '\n',
                        Some(b'r') => '\r',
                        Some(b't') => '\t',
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            run = self.pos;
                            continue;
                        }
                        _ => return Err(self.err("bad escape")),
                    };
                    out.push(c);
                    self.pos += 1;
                    run = self.pos;
                }
                Some(c) if *c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => self.pos += 1,
            }
        }
    }

    fn utf8_run(&self, from: usize) -> Result<&str, JsonError> {
        std::str::from_utf8(&self.bytes[from..self.pos]).map_err(|_| JsonError {
            message: "invalid UTF-8 in string".to_owned(),
            offset: from,
        })
    }

    /// Parses the 4 hex digits after `\u` (and a low surrogate pair
    /// when the first unit is a high surrogate). Leaves `pos` after the
    /// last consumed digit.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            if self.bytes.get(self.pos) == Some(&b'\\')
                && self.bytes.get(self.pos + 1) == Some(&b'u')
            {
                self.pos += 2;
                let lo = self.hex4()?;
                if (0xDC00..0xE000).contains(&lo) {
                    let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    return char::from_u32(c).ok_or_else(|| self.err("bad surrogate pair"));
                }
            }
            return Err(self.err("unpaired surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("bad unicode escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.bytes.get(self.pos) {
                Some(c @ b'0'..=b'9') => u32::from(c - b'0'),
                Some(c @ b'a'..=b'f') => u32::from(c - b'a') + 10,
                Some(c @ b'A'..=b'F') => u32::from(c - b'A') + 10,
                _ => return Err(self.err("bad unicode escape")),
            };
            v = (v << 4) | d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn object(&mut self, depth: u32) -> Result<Value, JsonError> {
        self.pos += 1; // '{'
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            if self.bytes.get(self.pos) != Some(&b'"') {
                return Err(self.err("expected object key"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.bytes.get(self.pos) != Some(&b':') {
                return Err(self.err("expected ':'"));
            }
            self.pos += 1;
            self.skip_ws();
            let v = self.value(depth + 1)?;
            fields.push((key, v));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self, depth: u32) -> Result<Value, JsonError> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_reprints_a_flat_frame() {
        let text = r#"{"type":"submit","req":1,"seed":25214903917,"ed":0.333,"ok":true,"x":null}"#;
        let v = Value::parse(text).unwrap();
        assert_eq!(v.get("type").unwrap().as_str(), Some("submit"));
        assert_eq!(v.get("req").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("seed").unwrap().as_u64(), Some(25_214_903_917));
        assert_eq!(v.get("ed").unwrap().as_f64(), Some(0.333));
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("x"), Some(&Value::Null));
        assert_eq!(v.render(), text, "numbers round-trip as raw lexemes");
    }

    #[test]
    fn floats_round_trip_exactly_through_display() {
        // 1/3 has no finite decimal expansion; shortest-round-trip
        // display + raw-lexeme storage must still recover it exactly.
        let x = 1.0f64 / 3.0;
        let v = Value::parse(&obj(vec![("x", float(x))]).render()).unwrap();
        assert_eq!(v.get("x").unwrap().as_f64(), Some(x));
    }

    #[test]
    fn escapes_round_trip() {
        let nasty = "a\"b\\c\nd\te\u{1}f — π𝄞";
        let rendered = obj(vec![("s", s(nasty))]).render();
        let v = Value::parse(&rendered).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some(nasty));
        // Escape forms parse too (incl. a surrogate pair).
        let v = Value::parse(r#"{"s":"\u0041\u00e9\ud834\udd1e\/"}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("Aé𝄞/"));
    }

    #[test]
    fn malformed_inputs_error_instead_of_panicking() {
        for bad in [
            "",
            "{",
            "}",
            "[",
            "nul",
            "tru",
            "{\"a\"}",
            "{\"a\":}",
            "{\"a\":1,}",
            "[1,]",
            "\"",
            "\"\\",
            "\"\\u12",
            "\"\\ud800\"",
            "01a",
            "-",
            "1e",
            "{\"a\":1}x",
            "\u{1}",
            "[[[[[[[[[[[[[[[[[[[[[[1]]]]]]]]]]]]]]]]]]]]]]",
        ] {
            assert!(Value::parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }
}
