//! The pinned result-table format, shared by the `step` CLI and the
//! network client.
//!
//! Byte-parity between `step circuit.bench --no-timing` and
//! `step client <addr> circuit.bench --no-timing` is an acceptance
//! criterion (the CI serve-smoke step diffs exactly that), so the
//! format strings live here **once** and both front-ends call them —
//! parity is structural, not a convention two copies have to keep.

/// The `circuit: …` banner line.
pub fn circuit_line(path: &str, inputs: u64, outputs: u64, ands: u64) -> String {
    format!("circuit: {path} — {inputs} inputs, {outputs} outputs, {ands} AND nodes")
}

/// The column-header row of the result table.
pub fn header() -> String {
    format!(
        "{:<16} {:>8} {:>6} {:>6} {:>6} {:>8} {:>8} {:>9} {:>9}",
        "output", "support", "|XA|", "|XB|", "|XC|", "eD", "eB", "optimal?", "cpu(ms)"
    )
}

/// A decomposed-output row.
#[allow(clippy::too_many_arguments)] // mirrors the column list exactly
pub fn partition_row(
    name: &str,
    support: u64,
    num_a: u64,
    num_b: u64,
    num_shared: u64,
    disjointness: f64,
    balancedness: f64,
    proved_optimal: bool,
    cpu: &str,
) -> String {
    format!(
        "{name:<16} {support:>8} {num_a:>6} {num_b:>6} {num_shared:>6} \
         {disjointness:>8.3} {balancedness:>8.3} {proved_optimal:>9} {cpu:>9}"
    )
}

/// A failed-output row (`timeout` or `not decomposable`).
pub fn failure_row(name: &str, support: u64, timed_out: bool) -> String {
    format!(
        "{name:<16} {support:>8} {}",
        if timed_out {
            "timeout"
        } else {
            "not decomposable"
        }
    )
}

/// The trailing summary line (includes its own leading blank line).
pub fn footer(decomposed: usize, model: &str) -> String {
    format!("\ndecomposed {decomposed} output function(s) with {model}")
}

/// The wall-clock cell: milliseconds, or `-` under `--no-timing` so
/// output is byte-identical across runs, machines and `--jobs` values.
pub fn cpu_cell(cpu_ms: u64, no_timing: bool) -> String {
    if no_timing {
        "-".to_owned()
    } else {
        cpu_ms.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The exact bytes the CLI has always printed — a change here is a
    // breaking change to every diff-based smoke test downstream.
    #[test]
    fn formats_are_pinned() {
        assert_eq!(
            circuit_line("c17.bench", 5, 2, 6),
            "circuit: c17.bench — 5 inputs, 2 outputs, 6 AND nodes"
        );
        assert_eq!(
            header(),
            "output            support   |XA|   |XB|   |XC|       eD       eB  optimal?   cpu(ms)"
        );
        assert_eq!(
            partition_row("G16", 4, 2, 1, 1, 0.75, 1.0 / 3.0, true, "-"),
            "G16                     4      2      1      1    0.750    0.333      true         -"
        );
        assert_eq!(
            partition_row("G17", 4, 2, 2, 0, 1.0, 1.0, false, "12"),
            "G17                     4      2      2      0    1.000    1.000     false        12"
        );
        assert_eq!(
            failure_row("G17", 9, true),
            "G17                     9 timeout"
        );
        assert_eq!(
            failure_row("G17", 9, false),
            "G17                     9 not decomposable"
        );
        assert_eq!(
            footer(2, "STEP-QD"),
            "\ndecomposed 2 output function(s) with STEP-QD"
        );
        assert_eq!(cpu_cell(12, false), "12");
        assert_eq!(cpu_cell(12, true), "-");
    }
}
