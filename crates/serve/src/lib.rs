//! # step-serve — the network front-end
//!
//! A TCP service (`step serve`) and matching client (`step client`)
//! over the [`step_core::StepService`] engine: circuits travel as
//! their original BENCH/BLIF/ASCII-AIGER file text inside
//! length-prefixed JSON frames, per-output results stream back as they
//! complete, and the client reprints the CLI's result table
//! byte-identically (under `--no-timing`) to an in-process run.
//!
//! Everything is `std`-only — the repo's dependency policy bars
//! crates.io, so the crate carries its own minimal [`json`] module and
//! [`frame`] codec rather than serde + tokio.
//!
//! ## Module map
//!
//! * [`json`] — a tiny JSON value reader/writer (raw number lexemes
//!   for exact `u64`/`f64` round-trips);
//! * [`frame`] — 4-byte big-endian length-prefixed UTF-8 frames with a
//!   hostile-length cap;
//! * [`proto`] — the typed frames: `hello`/`submit`/`cancel`/
//!   `shutdown` in, `hello_ok`/`accepted`/`output`/`done`/`error` out;
//! * [`table`] — the pinned result-table format both the CLI and the
//!   client print (parity is structural, not a convention);
//! * [`server`] — accept loop, per-tenant admission (quota ledger +
//!   queue-depth bound) and result forwarding;
//! * [`client`] — the one-request client.
//!
//! ## Determinism over the wire
//!
//! The served engine honours the same contract as the CLI: per-output
//! answers are pure functions of (cone fingerprint, op, config), so a
//! remote run with the same circuit, op and config prints the same
//! table as a local one — including budget-induced timeouts under
//! pure-work budgets. Admission (quotas, queue bounds) and fair-share
//! scheduling only decide *when* and *whether* a request runs, never
//! what it answers; the serve smoke test in CI diffs exactly that.

pub mod client;
pub mod frame;
pub mod json;
pub mod proto;
pub mod server;
pub mod table;
