//! The typed protocol spoken inside [`frame`](crate::frame)d JSON:
//! client frames (`hello`, `submit`, `cancel`, `shutdown`) and server
//! frames (`hello_ok`, `accepted`, `output`, `done`, `error`).
//!
//! Every frame is a flat JSON object with a `"type"` discriminator.
//! Circuits travel as their **original file text** plus a format tag;
//! the server parses them with the same `step-aig` readers the CLI
//! uses, which is one half of the byte-parity story (the other half is
//! [`table`](crate::table), shared by the CLI and the client).
//!
//! A `submit` carries budgets as the CLI's own `--budget` spec strings
//! (`wall:60s`, `work:200k`, …) and only when the user set them — the
//! server applies the same defaulting rules as the CLI, including the
//! pure-work wall-lift, so a remote run is configured identically to a
//! local one.

use crate::json::{self, obj, Value};

/// Protocol version; bumped on any incompatible frame change.
pub const PROTO_VERSION: u64 = 1;

/// A malformed or unexpected frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProtoError(pub String);

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Machine-readable error category carried by an `error` frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// Admission refused: the tenant's quota cannot cover the charge.
    OverQuota,
    /// Admission refused: the service queue is too deep.
    QueueFull,
    /// A malformed or unparseable frame / flag value.
    BadRequest,
    /// The circuit text failed to parse (or is not convertible).
    BadCircuit,
    /// The submission was cancelled before completing.
    Cancelled,
    /// A server-side failure.
    Internal,
    /// Protocol version or feature not supported.
    Unsupported,
}

impl ErrorCode {
    /// The wire spelling.
    pub fn label(self) -> &'static str {
        match self {
            ErrorCode::OverQuota => "over_quota",
            ErrorCode::QueueFull => "queue_full",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::BadCircuit => "bad_circuit",
            ErrorCode::Cancelled => "cancelled",
            ErrorCode::Internal => "internal",
            ErrorCode::Unsupported => "unsupported",
        }
    }

    /// Parses the wire spelling.
    pub fn parse(s: &str) -> Option<ErrorCode> {
        Some(match s {
            "over_quota" => ErrorCode::OverQuota,
            "queue_full" => ErrorCode::QueueFull,
            "bad_request" => ErrorCode::BadRequest,
            "bad_circuit" => ErrorCode::BadCircuit,
            "cancelled" => ErrorCode::Cancelled,
            "internal" => ErrorCode::Internal,
            "unsupported" => ErrorCode::Unsupported,
            _ => return None,
        })
    }
}

/// A decomposition request: the original circuit text plus the same
/// knobs the CLI exposes (absent optional fields mean "CLI default").
#[derive(Clone, Debug, PartialEq)]
pub struct SubmitRequest {
    /// Client-chosen request id, echoed on every response frame.
    pub req: u64,
    /// Circuit format: `bench`, `blif` or `aag` (binary AIGER does not
    /// travel — the client refuses `.aig` files up front).
    pub format: String,
    /// The circuit file text, verbatim.
    pub circuit: String,
    /// Root operator: `or`, `and` or `xor`.
    pub op: String,
    /// Engine model: `ljh`, `mg`, `qd`, `qb` or `qdb`.
    pub model: String,
    /// `--budget` spec, when explicitly set.
    pub budget: Option<String>,
    /// `--circuit-budget` spec, when explicitly set.
    pub circuit_budget: Option<String>,
    /// `--qbf-budget` spec, when explicitly set.
    pub qbf_budget: Option<String>,
    /// `--seed`, when explicitly set.
    pub seed: Option<u64>,
    /// `--sat-restarts` policy name, when explicitly set.
    pub sat_restarts: Option<String>,
    /// `--sat-preprocess`.
    pub sat_preprocess: bool,
    /// Relative deadline in milliseconds (the server anchors it at
    /// admission). Deadlines change which outputs time out, so parity
    /// checks never set one.
    pub deadline_ms: Option<u64>,
}

/// Frames the client sends.
#[derive(Clone, Debug, PartialEq)]
pub enum ClientFrame {
    /// Connection handshake: protocol version + optional tenant tag.
    Hello {
        /// The version the client speaks. Carried (not enforced) by
        /// the parser so the server can answer a mismatch with a typed
        /// `unsupported` error frame instead of a parse failure.
        proto: u64,
        /// Tenant name for quota accounting and fair-share scheduling.
        tenant: Option<String>,
    },
    /// A decomposition request (boxed: the payload dwarfs the other
    /// variants).
    Submit(Box<SubmitRequest>),
    /// Cancel an in-flight request by id.
    Cancel {
        /// The request id to cancel.
        req: u64,
    },
    /// Stop the server (drains nothing: in-flight work is cancelled by
    /// service shutdown). Loopback deployments only — there is no auth.
    Shutdown,
}

/// One per-output result row (the wire image of the fields
/// [`table`](crate::table) prints).
#[derive(Clone, Debug, PartialEq)]
pub struct OutputRow {
    /// Echoed request id.
    pub req: u64,
    /// Output index (client reorders by this; events arrive in
    /// completion order).
    pub index: u64,
    /// Output name.
    pub name: String,
    /// Support size of the output cone.
    pub support: u64,
    /// Partition metrics when the output decomposed.
    pub partition: Option<PartitionRow>,
    /// The partition was proved metric-optimal.
    pub proved_optimal: bool,
    /// A budget expired on this output.
    pub timed_out: bool,
    /// Server-side wall-clock milliseconds (suppressed by the client
    /// under `--no-timing`).
    pub cpu_ms: u64,
}

/// The partition numbers of a decomposed output.
#[derive(Clone, Debug, PartialEq)]
pub struct PartitionRow {
    /// `|XA|`.
    pub num_a: u64,
    /// `|XB|`.
    pub num_b: u64,
    /// `|XC|`.
    pub num_shared: u64,
    /// Disjointness metric `eD`.
    pub disjointness: f64,
    /// Balancedness metric `eB`.
    pub balancedness: f64,
}

/// Frames the server sends.
#[derive(Clone, Debug, PartialEq)]
pub enum ServerFrame {
    /// Handshake accepted.
    HelloOk,
    /// Submission admitted and queued.
    Accepted {
        /// Echoed request id.
        req: u64,
        /// Inputs after combinational conversion.
        inputs: u64,
        /// Outputs after combinational conversion.
        outputs: u64,
        /// AND nodes after combinational conversion.
        ands: u64,
        /// Conflicts reserved against the tenant's quota.
        charge: u64,
    },
    /// One output finished (completion order).
    Output(OutputRow),
    /// All outputs finished; the request is complete.
    Done {
        /// Echoed request id.
        req: u64,
        /// How long the submission waited before a worker started it.
        queue_wait_ms: u64,
    },
    /// The request (or connection) failed.
    Error {
        /// Request id, when the error is tied to one.
        req: Option<u64>,
        /// Machine-readable category.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

fn get_u64(v: &Value, key: &str) -> Result<u64, ProtoError> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| ProtoError(format!("missing or non-integer field {key:?}")))
}

fn get_str(v: &Value, key: &str) -> Result<String, ProtoError> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_owned)
        .ok_or_else(|| ProtoError(format!("missing or non-string field {key:?}")))
}

fn opt_str(v: &Value, key: &str) -> Option<String> {
    v.get(key).and_then(Value::as_str).map(str::to_owned)
}

fn get_f64(v: &Value, key: &str) -> Result<f64, ProtoError> {
    v.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| ProtoError(format!("missing or non-number field {key:?}")))
}

fn get_bool(v: &Value, key: &str) -> Result<bool, ProtoError> {
    v.get(key)
        .and_then(Value::as_bool)
        .ok_or_else(|| ProtoError(format!("missing or non-boolean field {key:?}")))
}

impl ClientFrame {
    /// Renders the frame to JSON text.
    pub fn render(&self) -> String {
        match self {
            ClientFrame::Hello { proto, tenant } => {
                let mut fields = vec![("type", json::s("hello")), ("proto", json::num(*proto))];
                if let Some(t) = tenant {
                    fields.push(("tenant", json::s(t)));
                }
                obj(fields).render()
            }
            ClientFrame::Submit(r) => {
                let mut fields = vec![
                    ("type", json::s("submit")),
                    ("req", json::num(r.req)),
                    ("format", json::s(&r.format)),
                    ("op", json::s(&r.op)),
                    ("model", json::s(&r.model)),
                    ("sat_preprocess", json::boolean(r.sat_preprocess)),
                ];
                if let Some(b) = &r.budget {
                    fields.push(("budget", json::s(b)));
                }
                if let Some(b) = &r.circuit_budget {
                    fields.push(("circuit_budget", json::s(b)));
                }
                if let Some(b) = &r.qbf_budget {
                    fields.push(("qbf_budget", json::s(b)));
                }
                if let Some(seed) = r.seed {
                    fields.push(("seed", json::num(seed)));
                }
                if let Some(p) = &r.sat_restarts {
                    fields.push(("sat_restarts", json::s(p)));
                }
                if let Some(ms) = r.deadline_ms {
                    fields.push(("deadline_ms", json::num(ms)));
                }
                // The big payload goes last so frame prefixes stay
                // human-readable in logs.
                fields.push(("circuit", json::s(&r.circuit)));
                obj(fields).render()
            }
            ClientFrame::Cancel { req } => {
                obj(vec![("type", json::s("cancel")), ("req", json::num(*req))]).render()
            }
            ClientFrame::Shutdown => obj(vec![("type", json::s("shutdown"))]).render(),
        }
    }

    /// Parses a frame the server received.
    ///
    /// # Errors
    ///
    /// [`ProtoError`] on malformed JSON, an unknown `type` or a
    /// missing required field.
    pub fn parse(text: &str) -> Result<ClientFrame, ProtoError> {
        let v = Value::parse(text).map_err(|e| ProtoError(format!("bad JSON: {e}")))?;
        match v.get("type").and_then(Value::as_str) {
            Some("hello") => Ok(ClientFrame::Hello {
                proto: get_u64(&v, "proto")?,
                tenant: opt_str(&v, "tenant"),
            }),
            Some("submit") => Ok(ClientFrame::Submit(Box::new(SubmitRequest {
                req: get_u64(&v, "req")?,
                format: get_str(&v, "format")?,
                circuit: get_str(&v, "circuit")?,
                op: get_str(&v, "op")?,
                model: get_str(&v, "model")?,
                budget: opt_str(&v, "budget"),
                circuit_budget: opt_str(&v, "circuit_budget"),
                qbf_budget: opt_str(&v, "qbf_budget"),
                seed: v.get("seed").and_then(Value::as_u64),
                sat_restarts: opt_str(&v, "sat_restarts"),
                sat_preprocess: get_bool(&v, "sat_preprocess")?,
                deadline_ms: v.get("deadline_ms").and_then(Value::as_u64),
            }))),
            Some("cancel") => Ok(ClientFrame::Cancel {
                req: get_u64(&v, "req")?,
            }),
            Some("shutdown") => Ok(ClientFrame::Shutdown),
            Some(other) => Err(ProtoError(format!("unknown frame type {other:?}"))),
            None => Err(ProtoError("frame has no \"type\" field".to_owned())),
        }
    }
}

impl ServerFrame {
    /// Renders the frame to JSON text.
    pub fn render(&self) -> String {
        match self {
            ServerFrame::HelloOk => obj(vec![
                ("type", json::s("hello_ok")),
                ("proto", json::num(PROTO_VERSION)),
            ])
            .render(),
            ServerFrame::Accepted {
                req,
                inputs,
                outputs,
                ands,
                charge,
            } => obj(vec![
                ("type", json::s("accepted")),
                ("req", json::num(*req)),
                ("inputs", json::num(*inputs)),
                ("outputs", json::num(*outputs)),
                ("ands", json::num(*ands)),
                ("charge", json::num(*charge)),
            ])
            .render(),
            ServerFrame::Output(row) => {
                let mut fields = vec![
                    ("type", json::s("output")),
                    ("req", json::num(row.req)),
                    ("index", json::num(row.index)),
                    ("name", json::s(&row.name)),
                    ("support", json::num(row.support)),
                    ("proved_optimal", json::boolean(row.proved_optimal)),
                    ("timed_out", json::boolean(row.timed_out)),
                    ("cpu_ms", json::num(row.cpu_ms)),
                ];
                if let Some(p) = &row.partition {
                    fields.push(("num_a", json::num(p.num_a)));
                    fields.push(("num_b", json::num(p.num_b)));
                    fields.push(("num_shared", json::num(p.num_shared)));
                    fields.push(("disjointness", json::float(p.disjointness)));
                    fields.push(("balancedness", json::float(p.balancedness)));
                }
                obj(fields).render()
            }
            ServerFrame::Done { req, queue_wait_ms } => obj(vec![
                ("type", json::s("done")),
                ("req", json::num(*req)),
                ("queue_wait_ms", json::num(*queue_wait_ms)),
            ])
            .render(),
            ServerFrame::Error { req, code, message } => {
                let mut fields = vec![("type", json::s("error"))];
                if let Some(req) = req {
                    fields.push(("req", json::num(*req)));
                }
                fields.push(("code", json::s(code.label())));
                fields.push(("message", json::s(message)));
                obj(fields).render()
            }
        }
    }

    /// Parses a frame the client received.
    ///
    /// # Errors
    ///
    /// [`ProtoError`] on malformed JSON, an unknown `type` or error
    /// code, or a missing required field.
    pub fn parse(text: &str) -> Result<ServerFrame, ProtoError> {
        let v = Value::parse(text).map_err(|e| ProtoError(format!("bad JSON: {e}")))?;
        match v.get("type").and_then(Value::as_str) {
            Some("hello_ok") => Ok(ServerFrame::HelloOk),
            Some("accepted") => Ok(ServerFrame::Accepted {
                req: get_u64(&v, "req")?,
                inputs: get_u64(&v, "inputs")?,
                outputs: get_u64(&v, "outputs")?,
                ands: get_u64(&v, "ands")?,
                charge: get_u64(&v, "charge")?,
            }),
            Some("output") => {
                let partition = match v.get("num_a") {
                    Some(_) => Some(PartitionRow {
                        num_a: get_u64(&v, "num_a")?,
                        num_b: get_u64(&v, "num_b")?,
                        num_shared: get_u64(&v, "num_shared")?,
                        disjointness: get_f64(&v, "disjointness")?,
                        balancedness: get_f64(&v, "balancedness")?,
                    }),
                    None => None,
                };
                Ok(ServerFrame::Output(OutputRow {
                    req: get_u64(&v, "req")?,
                    index: get_u64(&v, "index")?,
                    name: get_str(&v, "name")?,
                    support: get_u64(&v, "support")?,
                    partition,
                    proved_optimal: get_bool(&v, "proved_optimal")?,
                    timed_out: get_bool(&v, "timed_out")?,
                    cpu_ms: get_u64(&v, "cpu_ms")?,
                }))
            }
            Some("done") => Ok(ServerFrame::Done {
                req: get_u64(&v, "req")?,
                queue_wait_ms: get_u64(&v, "queue_wait_ms")?,
            }),
            Some("error") => Ok(ServerFrame::Error {
                req: v.get("req").and_then(Value::as_u64),
                code: {
                    let label = get_str(&v, "code")?;
                    ErrorCode::parse(&label)
                        .ok_or_else(|| ProtoError(format!("unknown error code {label:?}")))?
                },
                message: get_str(&v, "message")?,
            }),
            Some(other) => Err(ProtoError(format!("unknown frame type {other:?}"))),
            None => Err(ProtoError("frame has no \"type\" field".to_owned())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_frames_round_trip() {
        let frames = [
            ClientFrame::Hello {
                proto: PROTO_VERSION,
                tenant: Some("acme".to_owned()),
            },
            ClientFrame::Hello {
                proto: 2,
                tenant: None,
            },
            ClientFrame::Submit(Box::new(SubmitRequest {
                req: 7,
                format: "bench".to_owned(),
                circuit: "INPUT(a)\nOUTPUT(f)\nf = NOT(a)\n".to_owned(),
                op: "or".to_owned(),
                model: "qd".to_owned(),
                budget: Some("work:200k".to_owned()),
                circuit_budget: None,
                qbf_budget: Some("work:10k".to_owned()),
                seed: Some(0x5DEECE66D),
                sat_restarts: Some("ema".to_owned()),
                sat_preprocess: true,
                deadline_ms: Some(1500),
            })),
            ClientFrame::Cancel { req: 7 },
            ClientFrame::Shutdown,
        ];
        for f in frames {
            assert_eq!(ClientFrame::parse(&f.render()).unwrap(), f);
        }
    }

    #[test]
    fn server_frames_round_trip() {
        let frames = [
            ServerFrame::HelloOk,
            ServerFrame::Accepted {
                req: 1,
                inputs: 14,
                outputs: 8,
                ands: 98,
                charge: 448,
            },
            ServerFrame::Output(OutputRow {
                req: 1,
                index: 3,
                name: "G17".to_owned(),
                support: 5,
                partition: Some(PartitionRow {
                    num_a: 2,
                    num_b: 2,
                    num_shared: 1,
                    disjointness: 0.8,
                    balancedness: 1.0 / 3.0,
                }),
                proved_optimal: true,
                timed_out: false,
                cpu_ms: 12,
            }),
            ServerFrame::Output(OutputRow {
                req: 1,
                index: 4,
                name: "G18".to_owned(),
                support: 9,
                partition: None,
                proved_optimal: false,
                timed_out: true,
                cpu_ms: 4000,
            }),
            ServerFrame::Done {
                req: 1,
                queue_wait_ms: 3,
            },
            ServerFrame::Error {
                req: Some(2),
                code: ErrorCode::OverQuota,
                message: "tenant acme over quota: requested 9 conflicts, 1 available".to_owned(),
            },
        ];
        for f in frames {
            assert_eq!(ServerFrame::parse(&f.render()).unwrap(), f);
        }
    }

    #[test]
    fn version_travels_for_the_server_to_judge() {
        match ClientFrame::parse(r#"{"type":"hello","proto":9}"#).unwrap() {
            ClientFrame::Hello { proto, tenant } => {
                assert_eq!(proto, 9);
                assert_eq!(tenant, None);
            }
            other => panic!("parsed {other:?}"),
        }
    }
}
