//! The client side: `step client <addr> <circuit> [options]` submits
//! one circuit to a running `step serve` and reprints the result table
//! **byte-identically** to an in-process `step` run (under
//! `--no-timing`; with timing on, the cpu cells are the server's
//! measurements).
//!
//! The client uploads the circuit file's original text plus a format
//! tag — the server parses it with the same readers the CLI uses — and
//! buffers `output` frames (which arrive in completion order) until
//! `done`, then prints rows in output order, exactly as the CLI's
//! join-then-print path does.
//!
//! Exit codes: `0` success, `1` connection/server failure, `2` usage,
//! `3` admission refused (`over_quota` / `queue_full`).

use std::io::BufReader;
use std::net::TcpStream;
use std::path::Path;

use step_core::Model;

use crate::frame::{read_frame, write_frame};
use crate::proto::{ClientFrame, ErrorCode, OutputRow, ServerFrame, SubmitRequest, PROTO_VERSION};
use crate::table;

const CLIENT_USAGE: &str = "usage: step client <host:port> <circuit.{bench,blif,aag}> \
                            [--tenant name] [--model ljh|mg|qd|qb|qdb] [--op or|and|xor] \
                            [--seed n] [--sat-restarts luby|ema] [--sat-preprocess] \
                            [--budget spec] [--circuit-budget spec] [--qbf-budget spec] \
                            [--deadline-ms n] [--no-timing]\n\
                            or:    step client <host:port> --shutdown\n\
                            submits a circuit to a running `step serve` and prints the \
                            same result table an in-process run would (binary .aig does \
                            not travel; convert to .aag first)";

struct ClientCli {
    addr: String,
    path: String,
    tenant: Option<String>,
    model: Model,
    model_name: String,
    op: String,
    seed: Option<u64>,
    sat_restarts: Option<String>,
    sat_preprocess: bool,
    budget: Option<String>,
    circuit_budget: Option<String>,
    qbf_budget: Option<String>,
    deadline_ms: Option<u64>,
    no_timing: bool,
    shutdown: bool,
}

fn usage() -> ! {
    eprintln!("{CLIENT_USAGE}");
    std::process::exit(2)
}

fn parse_cli(args: &[String]) -> ClientCli {
    let mut cli = ClientCli {
        addr: String::new(),
        path: String::new(),
        tenant: None,
        model: Model::QbfDisjoint,
        model_name: "qd".to_owned(),
        op: "or".to_owned(),
        seed: None,
        sat_restarts: None,
        sat_preprocess: false,
        budget: None,
        circuit_budget: None,
        qbf_budget: None,
        deadline_ms: None,
        no_timing: false,
        shutdown: false,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tenant" => {
                i += 1;
                match args.get(i) {
                    Some(t) => cli.tenant = Some(t.clone()),
                    None => usage(),
                }
            }
            "--model" => {
                i += 1;
                let name = args.get(i).map(String::as_str);
                cli.model = match name {
                    Some("ljh") => Model::Ljh,
                    Some("mg") => Model::MusGroup,
                    Some("qd") => Model::QbfDisjoint,
                    Some("qb") => Model::QbfBalanced,
                    Some("qdb") => Model::QbfCombined,
                    _ => usage(),
                };
                cli.model_name = name.expect("matched above").to_owned();
            }
            "--op" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some(op @ ("or" | "and" | "xor")) => cli.op = op.to_owned(),
                    _ => usage(),
                }
            }
            "--seed" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(seed) => cli.seed = Some(seed),
                    None => usage(),
                }
            }
            "--sat-restarts" => {
                i += 1;
                match args.get(i) {
                    Some(p) => cli.sat_restarts = Some(p.clone()),
                    None => usage(),
                }
            }
            "--sat-preprocess" => cli.sat_preprocess = true,
            flag @ ("--budget" | "--circuit-budget" | "--qbf-budget") => {
                i += 1;
                let Some(spec) = args.get(i) else { usage() };
                match flag {
                    "--budget" => cli.budget = Some(spec.clone()),
                    "--circuit-budget" => cli.circuit_budget = Some(spec.clone()),
                    _ => cli.qbf_budget = Some(spec.clone()),
                }
            }
            "--deadline-ms" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(ms) => cli.deadline_ms = Some(ms),
                    None => usage(),
                }
            }
            "--no-timing" => cli.no_timing = true,
            "--shutdown" => cli.shutdown = true,
            "--help" | "-h" => {
                println!("{CLIENT_USAGE}");
                std::process::exit(0)
            }
            other if !other.starts_with('-') && cli.addr.is_empty() => cli.addr = other.to_owned(),
            other if !other.starts_with('-') && cli.path.is_empty() => cli.path = other.to_owned(),
            _ => usage(),
        }
        i += 1;
    }
    if cli.addr.is_empty() || (cli.path.is_empty() && !cli.shutdown) {
        usage();
    }
    cli
}

/// The wire format tag for a circuit path, by extension. Binary AIGER
/// is refused up front: the protocol carries text.
fn format_of(path: &str) -> Result<&'static str, String> {
    match Path::new(path).extension().and_then(|e| e.to_str()) {
        Some("bench") => Ok("bench"),
        Some("blif") => Ok("blif"),
        Some("aag") => Ok("aag"),
        Some("aig") => {
            Err("binary AIGER does not travel over the wire; convert to .aag".to_owned())
        }
        _ => Err(format!("unrecognized circuit extension in {path:?}")),
    }
}

fn fail(message: &str) -> ! {
    eprintln!("error: {message}");
    std::process::exit(1)
}

/// `step client ...` entry point: parses flags, runs one request,
/// exits with the documented code.
pub fn main(args: &[String]) -> ! {
    let cli = parse_cli(args);
    let stream = match TcpStream::connect(&cli.addr) {
        Ok(s) => s,
        Err(e) => fail(&format!("connect {}: {e}", cli.addr)),
    };
    let _ = stream.set_nodelay(true);
    let mut reader = match stream.try_clone() {
        Ok(r) => BufReader::new(r),
        Err(e) => fail(&format!("{e}")),
    };
    let mut writer = stream;
    let send = |writer: &mut TcpStream, frame: &ClientFrame| {
        if let Err(e) = write_frame(writer, &frame.render()) {
            fail(&format!("send: {e}"));
        }
    };
    let recv = |reader: &mut BufReader<TcpStream>| -> ServerFrame {
        match read_frame(reader) {
            Ok(Some(text)) => match ServerFrame::parse(&text) {
                Ok(frame) => frame,
                Err(e) => fail(&format!("bad frame from server: {e}")),
            },
            Ok(None) => fail("server closed the connection"),
            Err(e) => fail(&format!("recv: {e}")),
        }
    };

    send(
        &mut writer,
        &ClientFrame::Hello {
            proto: PROTO_VERSION,
            tenant: cli.tenant.clone(),
        },
    );
    match recv(&mut reader) {
        ServerFrame::HelloOk => {}
        ServerFrame::Error { message, .. } => fail(&message),
        other => fail(&format!("expected hello_ok, got {other:?}")),
    }

    if cli.shutdown {
        send(&mut writer, &ClientFrame::Shutdown);
        std::process::exit(0)
    }

    let format = match format_of(&cli.path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2)
        }
    };
    let circuit = match std::fs::read_to_string(&cli.path) {
        Ok(text) => text,
        Err(e) => fail(&format!("{}: {e}", cli.path)),
    };
    send(
        &mut writer,
        &ClientFrame::Submit(Box::new(SubmitRequest {
            req: 1,
            format: format.to_owned(),
            circuit,
            op: cli.op.clone(),
            model: cli.model_name.clone(),
            budget: cli.budget.clone(),
            circuit_budget: cli.circuit_budget.clone(),
            qbf_budget: cli.qbf_budget.clone(),
            seed: cli.seed,
            sat_restarts: cli.sat_restarts.clone(),
            sat_preprocess: cli.sat_preprocess,
            deadline_ms: cli.deadline_ms,
        })),
    );

    // Output frames arrive in completion order; buffer and reorder by
    // index at `done` so stdout matches the CLI's join-then-print path
    // byte for byte.
    let mut rows: Vec<OutputRow> = Vec::new();
    loop {
        match recv(&mut reader) {
            ServerFrame::Accepted {
                inputs,
                outputs,
                ands,
                ..
            } => {
                println!("{}", table::circuit_line(&cli.path, inputs, outputs, ands));
                println!("{}", table::header());
            }
            ServerFrame::Output(row) => rows.push(row),
            ServerFrame::Done { .. } => {
                rows.sort_by_key(|r| r.index);
                let mut decomposed = 0usize;
                for row in &rows {
                    match &row.partition {
                        Some(p) => {
                            decomposed += 1;
                            println!(
                                "{}",
                                table::partition_row(
                                    &row.name,
                                    row.support,
                                    p.num_a,
                                    p.num_b,
                                    p.num_shared,
                                    p.disjointness,
                                    p.balancedness,
                                    row.proved_optimal,
                                    &table::cpu_cell(row.cpu_ms, cli.no_timing),
                                )
                            );
                        }
                        None => {
                            println!(
                                "{}",
                                table::failure_row(&row.name, row.support, row.timed_out)
                            );
                        }
                    }
                }
                println!("{}", table::footer(decomposed, &cli.model.to_string()));
                std::process::exit(0)
            }
            ServerFrame::Error { code, message, .. } => {
                eprintln!("error: {}: {message}", code.label());
                let rejected = matches!(code, ErrorCode::OverQuota | ErrorCode::QueueFull);
                std::process::exit(if rejected { 3 } else { 1 })
            }
            ServerFrame::HelloOk => fail("unexpected hello_ok"),
        }
    }
}
