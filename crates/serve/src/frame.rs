//! The frame codec: each protocol message is a 4-byte big-endian
//! length followed by that many bytes of UTF-8 JSON text.
//!
//! Length-prefixing (rather than newline-delimiting) keeps circuit
//! uploads trivial — BENCH/BLIF/AIGER text rides inside a JSON string
//! and the reader never scans for terminators. Frames are capped at
//! [`MAX_FRAME`] bytes so a hostile length word cannot drive an
//! allocation: the connection errors out instead.

use std::io::{self, Read, Write};

/// Maximum frame payload (32 MiB — comfortably above the largest
/// registry circuit, far below an allocation attack).
pub const MAX_FRAME: usize = 32 << 20;

/// Writes one frame and flushes it (the protocol is interactive; a
/// buffered unflushed frame would deadlock both sides).
///
/// # Errors
///
/// [`io::Error`] from the underlying writer, or `InvalidInput` if the
/// payload exceeds [`MAX_FRAME`].
pub fn write_frame(w: &mut impl Write, payload: &str) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "frame of {} bytes exceeds the {MAX_FRAME}-byte cap",
                payload.len()
            ),
        ));
    }
    let len = u32::try_from(payload.len()).expect("MAX_FRAME fits in u32");
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload.as_bytes())?;
    w.flush()
}

/// Reads one frame; `Ok(None)` on a clean EOF at a frame boundary
/// (the peer closed the connection between messages).
///
/// # Errors
///
/// [`io::Error`] from the underlying reader; `InvalidData` for a
/// truncated frame, an over-cap length word, or non-UTF-8 payload.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<String>> {
    let mut len_bytes = [0u8; 4];
    // A clean EOF before the first length byte ends the stream; EOF
    // anywhere later truncates a frame and is an error.
    match r.read(&mut len_bytes[..1])? {
        0 => return Ok(None),
        1 => {}
        _ => unreachable!("read of a 1-byte buffer"),
    }
    r.read_exact(&mut len_bytes[1..])?;
    let len = u32::from_be_bytes(len_bytes) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    String::from_utf8(payload)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame payload is not UTF-8"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_and_eof_is_clean_at_boundaries() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"a\":1}").unwrap();
        write_frame(&mut buf, "").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("{\"a\":1}"));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(""));
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");
    }

    #[test]
    fn truncated_and_oversized_frames_are_errors() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"a\":1}").unwrap();
        let mut r = &buf[..buf.len() - 2];
        assert!(read_frame(&mut r).is_err(), "truncated payload");
        let mut r = &buf[..2];
        assert!(read_frame(&mut r).is_err(), "truncated length word");
        let huge = (u32::MAX).to_be_bytes();
        assert!(read_frame(&mut &huge[..]).is_err(), "hostile length word");
    }
}
