//! The server side of `step serve`: a TCP accept loop feeding one
//! shared [`StepService`] + [`TieredStore`], with per-tenant admission
//! control in front of it.
//!
//! ## Shape
//!
//! One thread per connection reads frames; each admitted submission
//! gets a **forwarder** thread that drains the submission handle and
//! streams `output` frames back (completion order — the client
//! reorders by index). All frames of a connection funnel through one
//! mutexed writer, so concurrent requests interleave at frame
//! granularity, never mid-frame. The connection thread keeps each
//! request's [`Canceller`], so `cancel` frames work even while the
//! forwarder is blocked on the next result.
//!
//! ## Admission
//!
//! A submission is refused (typed `error` frame, nothing queued) when
//! the service queue is deeper than `--max-queue`, or when the
//! connection's tenant cannot cover the request's **charge** under its
//! quota. The charge is the work ceiling the request could consume:
//! an explicit work budget when the client set one, else the cost
//! model's per-output conflict predictions (fingerprint history first,
//! support-bucket EWMA else). Quota accounting is two-phase — reserve
//! the charge at admission, commit the *actual* conflicts at
//! completion — so long-running requests cannot be double-admitted
//! against the same headroom.
//!
//! Admission never touches the engine's budgets: an admitted request
//! runs exactly the configuration the client sent, which is what keeps
//! served results byte-identical to in-process runs.

use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use step_aig::{aiger, bench_io, blif, canonicalize, Aig};
use step_core::{
    Budget, Canceller, CostModel, DecompConfig, GateOp, Model, ResultCache, StepError, StepService,
    SubmitOptions, TenantLedger, TieredStore, WorkReservation,
};

use crate::frame::{read_frame, write_frame};
use crate::proto::{
    ClientFrame, ErrorCode, OutputRow, PartitionRow, ServerFrame, SubmitRequest, PROTO_VERSION,
};

/// Server configuration (the `step serve` flag set).
#[derive(Clone, Debug)]
pub struct ServerOptions {
    /// Bind address (`127.0.0.1:0` picks a free port; the chosen
    /// address is printed as `listening on <addr>`).
    pub addr: String,
    /// Worker threads in the shared service pool.
    pub jobs: usize,
    /// Default per-tenant conflict quota.
    pub default_quota: u64,
    /// Per-tenant quota overrides.
    pub tenant_quotas: Vec<(String, u64)>,
    /// Refuse submissions once this many are queued unstarted.
    pub max_queue: usize,
    /// Persistent artifact store directory (warm starts across server
    /// restarts).
    pub cache_dir: Option<PathBuf>,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            addr: "127.0.0.1:3737".to_owned(),
            jobs: 1,
            default_quota: u64::MAX,
            tenant_quotas: Vec::new(),
            max_queue: 64,
            cache_dir: None,
        }
    }
}

const SERVE_USAGE: &str = "usage: step serve [--addr host:port] [--jobs n] [--quota conflicts] \
                           [--tenant-quota name=conflicts] [--max-queue n] [--cache-dir path]\n\
                           binds a framed-JSON decomposition service (see README \
                           \"Network service\"); --addr 127.0.0.1:0 picks a free port \
                           and prints it as `listening on <addr>`";

/// `step serve ...` entry point: parses flags, runs the server, exits.
pub fn main(args: &[String]) -> ! {
    let mut opts = ServerOptions::default();
    let usage = || -> ! {
        eprintln!("{SERVE_USAGE}");
        std::process::exit(2)
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                i += 1;
                match args.get(i) {
                    Some(a) => opts.addr = a.clone(),
                    None => usage(),
                }
            }
            "--jobs" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<usize>().ok()) {
                    Some(n) if n >= 1 => opts.jobs = n,
                    _ => usage(),
                }
            }
            "--quota" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(q) => opts.default_quota = q,
                    None => usage(),
                }
            }
            "--tenant-quota" => {
                i += 1;
                let parsed = args.get(i).and_then(|s| {
                    let (name, q) = s.split_once('=')?;
                    Some((name.to_owned(), q.parse().ok()?))
                });
                match parsed {
                    Some(tq) => opts.tenant_quotas.push(tq),
                    None => usage(),
                }
            }
            "--max-queue" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(n) => opts.max_queue = n,
                    None => usage(),
                }
            }
            "--cache-dir" => {
                i += 1;
                match args.get(i) {
                    Some(p) => opts.cache_dir = Some(PathBuf::from(p)),
                    None => usage(),
                }
            }
            "--help" | "-h" => {
                println!("{SERVE_USAGE}");
                std::process::exit(0)
            }
            _ => usage(),
        }
        i += 1;
    }
    match run(&opts) {
        Ok(()) => std::process::exit(0),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1)
        }
    }
}

/// Everything a connection thread needs, shared by all of them.
struct ServerCtx {
    service: StepService,
    tenants: Arc<TenantLedger>,
    max_queue: usize,
    shutdown: AtomicBool,
    addr: SocketAddr,
}

/// Binds and runs the server until a `shutdown` frame arrives.
///
/// # Errors
///
/// [`std::io::Error`] when the bind fails or the cache directory
/// cannot be opened; per-connection I/O errors only drop that
/// connection.
pub fn run(opts: &ServerOptions) -> std::io::Result<()> {
    let listener = TcpListener::bind(&opts.addr)?;
    let addr = listener.local_addr()?;
    // The one contractual stdout line: harnesses scrape the port from
    // it (`--addr 127.0.0.1:0`), so print-and-flush before accepting.
    println!("listening on {addr}");
    std::io::stdout().flush()?;

    // Same reuse defaults as the CLI: result cache on, clause bank
    // off, disk tier when asked. One store serves every connection —
    // cross-request reuse changes conflict counts, never answers.
    let cache = Some(Arc::new(ResultCache::new()));
    let store = match &opts.cache_dir {
        Some(dir) => {
            Arc::new(TieredStore::with_disk(cache, None, dir).map_err(std::io::Error::other)?)
        }
        None => Arc::new(TieredStore::memory(cache, None)),
    };
    let tenants = Arc::new(TenantLedger::new(opts.default_quota));
    for (tenant, quota) in &opts.tenant_quotas {
        tenants.set_quota(tenant, *quota);
    }
    let ctx = Arc::new(ServerCtx {
        service: StepService::spawn_with_store(opts.jobs.max(1), store),
        tenants,
        max_queue: opts.max_queue,
        shutdown: AtomicBool::new(false),
        addr,
    });

    let mut connections = Vec::new();
    for stream in listener.incoming() {
        if ctx.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let ctx = Arc::clone(&ctx);
        connections.push(std::thread::spawn(move || handle_connection(stream, &ctx)));
    }
    for conn in connections {
        let _ = conn.join();
    }
    // Persist what the run learnt; losing the flush costs the next
    // server's warm start, not any answer already streamed.
    if let Err(e) = ctx.service.flush() {
        eprintln!("warning: cache flush failed: {e}");
    }
    Ok(())
}

/// A connection's shared frame writer (forwarder threads and the
/// reader interleave on it at frame granularity).
type SharedWriter = Arc<Mutex<BufWriter<TcpStream>>>;

fn send(writer: &SharedWriter, frame: &ServerFrame) -> std::io::Result<()> {
    let mut w = writer.lock().expect("serve writer lock");
    write_frame(&mut *w, &frame.render())
}

fn send_error(writer: &SharedWriter, req: Option<u64>, code: ErrorCode, message: String) {
    let _ = send(writer, &ServerFrame::Error { req, code, message });
}

fn handle_connection(stream: TcpStream, ctx: &Arc<ServerCtx>) {
    // Frames are small and interactive; never Nagle-delay them.
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let writer: SharedWriter = Arc::new(Mutex::new(BufWriter::new(stream)));
    let mut tenant: Option<String> = None;
    let cancellers: Arc<Mutex<HashMap<u64, Canceller>>> = Arc::default();
    let mut forwarders = Vec::new();

    // A clean close, a half-read frame, or a vanished peer all end
    // the connection the same way; in-flight submissions finish and
    // their forwarders notice the dead socket.
    while let Ok(Some(text)) = read_frame(&mut reader) {
        match ClientFrame::parse(&text) {
            Err(e) => send_error(&writer, None, ErrorCode::BadRequest, e.to_string()),
            Ok(ClientFrame::Hello { proto, tenant: t }) => {
                if proto != PROTO_VERSION {
                    send_error(
                        &writer,
                        None,
                        ErrorCode::Unsupported,
                        format!(
                            "protocol version {proto} unsupported (server speaks {PROTO_VERSION})"
                        ),
                    );
                    continue;
                }
                tenant = t;
                let _ = send(&writer, &ServerFrame::HelloOk);
            }
            Ok(ClientFrame::Cancel { req }) => {
                if let Some(c) = cancellers.lock().expect("canceller map lock").get(&req) {
                    c.cancel();
                }
            }
            Ok(ClientFrame::Shutdown) => {
                ctx.shutdown.store(true, Ordering::SeqCst);
                // The accept loop is blocked in `accept`; a throwaway
                // self-connection wakes it to observe the flag.
                let _ = TcpStream::connect(ctx.addr);
                break;
            }
            Ok(ClientFrame::Submit(request)) => {
                if let Some(forwarder) =
                    handle_submit(*request, tenant.as_deref(), ctx, &writer, &cancellers)
                {
                    forwarders.push(forwarder);
                }
            }
        }
    }
    for forwarder in forwarders {
        let _ = forwarder.join();
    }
}

/// Parses the uploaded circuit text with the same readers the CLI's
/// file loader dispatches to.
fn parse_circuit(format: &str, text: &str) -> Result<Result<Aig, String>, String> {
    Ok(match format {
        "bench" => bench_io::parse(text).map_err(|e| e.to_string()),
        "blif" => blif::parse(text).map_err(|e| e.to_string()),
        "aag" => aiger::parse(text).map_err(|e| e.to_string()),
        other => return Err(format!("unknown circuit format {other:?}")),
    })
}

/// Builds the engine configuration from a submit frame, applying the
/// same defaulting rules as the CLI (including the pure-work
/// wall-lift), so remote and local runs are configured identically.
fn build_config(request: &SubmitRequest) -> Result<(GateOp, DecompConfig), String> {
    let op = match request.op.as_str() {
        "or" => GateOp::Or,
        "and" => GateOp::And,
        "xor" => GateOp::Xor,
        other => return Err(format!("unknown op {other:?}")),
    };
    let model = match request.model.as_str() {
        "ljh" => Model::Ljh,
        "mg" => Model::MusGroup,
        "qd" => Model::QbfDisjoint,
        "qb" => Model::QbfBalanced,
        "qdb" => Model::QbfCombined,
        other => return Err(format!("unknown model {other:?}")),
    };
    let mut config = DecompConfig::new(model);
    let mut qbf_set = false;
    let mut circuit_set = false;
    if let Some(spec) = &request.budget {
        config.budget.per_output = Budget::parse(spec).map_err(|e| format!("budget: {e}"))?;
    }
    if let Some(spec) = &request.circuit_budget {
        config.budget.per_circuit =
            Budget::parse(spec).map_err(|e| format!("circuit_budget: {e}"))?;
        circuit_set = true;
    }
    if let Some(spec) = &request.qbf_budget {
        config.budget.per_qbf_call = Budget::parse(spec).map_err(|e| format!("qbf_budget: {e}"))?;
        qbf_set = true;
    }
    config
        .budget
        .lift_unset_walls_for_pure_work(qbf_set, circuit_set);
    if let Some(seed) = request.seed {
        config.seed = seed;
    }
    if let Some(policy) = &request.sat_restarts {
        config.sat_restarts = policy
            .parse()
            .map_err(|_| format!("unknown restart policy {policy:?}"))?;
    }
    config.sat_preprocess = request.sat_preprocess;
    Ok((op, config))
}

/// The quota charge of a request: its work ceiling when one is
/// configured, else the cost model's prediction over the circuit's
/// output cones (canonicalized, so repeat fingerprints price at their
/// observed cost).
fn estimate_charge(comb: &Aig, config: &DecompConfig, model: &Arc<CostModel>) -> u64 {
    if let Some(work) = config.budget.per_circuit.work() {
        return work;
    }
    if let Some(per_output) = config.budget.per_output.work() {
        return per_output.saturating_mul(comb.num_outputs() as u64);
    }
    comb.outputs()
        .iter()
        .map(|out| {
            let cone = comb.cone(out.lit());
            let canon = canonicalize(&cone.aig, cone.root);
            model.predict(Some(canon.fingerprint.hash), cone.support_size())
        })
        .sum()
}

/// Admits and submits one request; returns the forwarder thread that
/// streams its results, or `None` if it was refused (an `error` frame
/// has been sent).
fn handle_submit(
    request: SubmitRequest,
    tenant: Option<&str>,
    ctx: &Arc<ServerCtx>,
    writer: &SharedWriter,
    cancellers: &Arc<Mutex<HashMap<u64, Canceller>>>,
) -> Option<std::thread::JoinHandle<()>> {
    let rid = request.req;
    let circuit = match parse_circuit(&request.format, &request.circuit) {
        Err(e) => {
            send_error(writer, Some(rid), ErrorCode::BadRequest, e);
            return None;
        }
        Ok(Err(e)) => {
            send_error(writer, Some(rid), ErrorCode::BadCircuit, e);
            return None;
        }
        Ok(Ok(circuit)) => circuit,
    };
    let comb = if circuit.is_comb() {
        circuit
    } else {
        match circuit.comb() {
            Ok(comb) => comb,
            Err(e) => {
                send_error(writer, Some(rid), ErrorCode::BadCircuit, e.to_string());
                return None;
            }
        }
    };
    let (op, config) = match build_config(&request) {
        Ok(parsed) => parsed,
        Err(e) => {
            send_error(writer, Some(rid), ErrorCode::BadRequest, e);
            return None;
        }
    };
    let depth = ctx.service.queue_depth();
    if depth >= ctx.max_queue {
        send_error(
            writer,
            Some(rid),
            ErrorCode::QueueFull,
            format!("{depth} submissions queued (limit {})", ctx.max_queue),
        );
        return None;
    }
    let comb = Arc::new(comb);
    let charge = estimate_charge(&comb, &config, ctx.service.cost_model());
    let reservation: Option<WorkReservation> = match tenant {
        Some(tenant) => match ctx.tenants.reserve(tenant, charge) {
            Ok(reservation) => Some(reservation),
            Err(over) => {
                send_error(writer, Some(rid), ErrorCode::OverQuota, over.to_string());
                return None;
            }
        },
        None => None,
    };
    let options = SubmitOptions {
        deadline: request
            .deadline_ms
            .map(|ms| Instant::now() + Duration::from_millis(ms)),
        tenant: tenant.map(Arc::from),
        cost_hint: Some(charge),
    };
    let handle = match ctx
        .service
        .submit_shared_with(Arc::clone(&comb), op, config, options)
    {
        Ok(handle) => handle,
        Err(e) => {
            // The dropped `reservation` rolls itself back.
            send_error(writer, Some(rid), ErrorCode::Internal, e.to_string());
            return None;
        }
    };
    let _ = send(
        writer,
        &ServerFrame::Accepted {
            req: rid,
            inputs: comb.num_inputs() as u64,
            outputs: comb.num_outputs() as u64,
            ands: comb.and_count() as u64,
            charge,
        },
    );
    cancellers
        .lock()
        .expect("canceller map lock")
        .insert(rid, handle.canceller());

    let writer = Arc::clone(writer);
    let cancellers = Arc::clone(cancellers);
    Some(std::thread::spawn(move || {
        let mut handle = handle;
        while let Some(event) = handle.recv() {
            // Per-output errors surface once, through join's
            // lowest-index-error rule, as the request's error frame.
            if let Ok(out) = &event.result {
                let row = OutputRow {
                    req: rid,
                    index: event.output_index as u64,
                    name: out.name.clone(),
                    support: out.support as u64,
                    partition: out.partition.as_ref().map(|p| PartitionRow {
                        num_a: p.num_a() as u64,
                        num_b: p.num_b() as u64,
                        num_shared: p.num_shared() as u64,
                        disjointness: p.disjointness(),
                        balancedness: p.balancedness(),
                    }),
                    proved_optimal: out.proved_optimal,
                    timed_out: out.timed_out,
                    cpu_ms: out.cpu.as_millis() as u64,
                };
                if send(&writer, &ServerFrame::Output(row)).is_err() {
                    // The client is gone; stop burning effort on it.
                    handle.cancel();
                }
            }
        }
        match handle.join() {
            Ok(result) => {
                // Two-phase quota accounting resolves: the reservation
                // held the *estimate*, the quota is charged the actual
                // conflicts the request cost.
                let spent: u64 = result.outputs.iter().map(|o| o.effort.conflicts).sum();
                if let Some(reservation) = reservation {
                    reservation.commit(spent);
                }
                let _ = send(
                    &writer,
                    &ServerFrame::Done {
                        req: rid,
                        queue_wait_ms: result.queue_wait.as_millis() as u64,
                    },
                );
            }
            Err(e) => {
                if let Some(reservation) = reservation {
                    reservation.rollback();
                }
                let code = match e {
                    StepError::Cancelled => ErrorCode::Cancelled,
                    _ => ErrorCode::Internal,
                };
                send_error(&writer, Some(rid), code, e.to_string());
            }
        }
        cancellers.lock().expect("canceller map lock").remove(&rid);
    }))
}
