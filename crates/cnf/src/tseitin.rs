//! Tseitin encoding of AIG cones into CNF.
//!
//! [`AigCnf`] tracks the AIG-node → CNF-variable mapping so several
//! circuit copies (the `f(X)`, `f(X')`, `f(X'')` copies of the paper's
//! formulations) can share one incremental solver instance.
//!
//! ```
//! use step_aig::Aig;
//! use step_cnf::{tseitin::AigCnf, Cnf};
//!
//! let mut aig = Aig::new();
//! let a = aig.add_input("a");
//! let b = aig.add_input("b");
//! let f = aig.and(a, b);
//!
//! let mut cnf = Cnf::new();
//! let mut enc = AigCnf::new();
//! let f_lit = enc.encode(&mut cnf, &aig, f);
//! cnf.add_unit(f_lit); // assert f
//! assert!(cnf.num_clauses() >= 3);
//! ```

use std::collections::HashMap;

use step_aig::{Aig, AigLit, AigNode, NodeId};

use crate::cnf::Cnf;
use crate::lit::Lit;

/// An AIG→CNF encoder with a persistent node-to-variable map.
#[derive(Default, Debug, Clone)]
pub struct AigCnf {
    map: HashMap<NodeId, Lit>,
    const_lit: Option<Lit>,
}

impl AigCnf {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        AigCnf::default()
    }

    /// Pre-assigns AIG node `node` to CNF literal `lit` (used to alias
    /// the same circuit leaf across copies, or to bind inputs to
    /// existing solver variables).
    pub fn bind(&mut self, node: NodeId, lit: Lit) {
        self.map.insert(node, lit);
    }

    /// The CNF literal already assigned to `node`, if any.
    pub fn lookup(&self, node: NodeId) -> Option<Lit> {
        self.map.get(&node).copied()
    }

    /// The CNF literal for an AIG literal whose node is already encoded.
    ///
    /// # Panics
    ///
    /// Panics if the node has not been encoded or bound.
    pub fn lit(&self, lit: AigLit) -> Lit {
        self.map[&lit.node()].xor_sign(lit.is_complement())
    }

    /// Encodes the cone of `root` into `cnf` and returns the CNF literal
    /// equal to `root`. Nodes already in the map are reused; fresh
    /// variables are allocated for unbound leaves and AND gates.
    pub fn encode(&mut self, cnf: &mut Cnf, aig: &Aig, root: AigLit) -> Lit {
        let mut stack = vec![root.node()];
        while let Some(&id) = stack.last() {
            if self.map.contains_key(&id) {
                stack.pop();
                continue;
            }
            match aig.node(id) {
                AigNode::Const => {
                    let l = self.const_false(cnf);
                    self.map.insert(id, l);
                    stack.pop();
                }
                AigNode::Input { .. } | AigNode::Latch { .. } => {
                    let v = cnf.new_var();
                    self.map.insert(id, Lit::pos(v));
                    stack.pop();
                }
                AigNode::And { f0, f1 } => {
                    let m0 = self.map.get(&f0.node()).copied();
                    let m1 = self.map.get(&f1.node()).copied();
                    match (m0, m1) {
                        (Some(a), Some(b)) => {
                            let a = a.xor_sign(f0.is_complement());
                            let b = b.xor_sign(f1.is_complement());
                            let g = Lit::pos(cnf.new_var());
                            // g ↔ a ∧ b
                            cnf.add_clause([!g, a]);
                            cnf.add_clause([!g, b]);
                            cnf.add_clause([g, !a, !b]);
                            self.map.insert(id, g);
                            stack.pop();
                        }
                        _ => {
                            if m0.is_none() {
                                stack.push(f0.node());
                            }
                            if m1.is_none() {
                                stack.push(f1.node());
                            }
                        }
                    }
                }
            }
        }
        self.map[&root.node()].xor_sign(root.is_complement())
    }

    /// A literal constrained to false (allocated once per encoder).
    pub fn const_false(&mut self, cnf: &mut Cnf) -> Lit {
        if let Some(l) = self.const_lit {
            return l;
        }
        let l = Lit::pos(cnf.new_var());
        cnf.add_unit(!l);
        self.const_lit = Some(l);
        l
    }
}

/// Polarity-aware (Plaisted–Greenbaum) encoding of `root` **to be
/// asserted true**: for every AND node only the implication directions
/// reachable under its polarity are emitted, roughly halving the
/// clause count of one-shot queries such as miter checks.
///
/// The returned literal is only *equisatisfiable* in the asserted
/// direction: add `cnf.add_unit(lit)` and solve; models restricted to
/// the bound input variables agree with full Tseitin. Do **not** reuse
/// nodes encoded this way under the opposite polarity.
///
/// `bind` maps AIG leaves to existing CNF literals (like
/// [`AigCnf::bind`]); unbound leaves get fresh variables, returned in
/// the map.
pub fn encode_plaisted_greenbaum(
    cnf: &mut Cnf,
    aig: &Aig,
    root: AigLit,
    bind: &HashMap<NodeId, Lit>,
) -> (Lit, HashMap<NodeId, Lit>) {
    // 1. Polarity marking: 1 = positive, 2 = negative, 3 = both.
    let mut pol = vec![0u8; aig.node_count()];
    let mut stack = vec![(root.node(), if root.is_complement() { 2u8 } else { 1u8 })];
    while let Some((id, p)) = stack.pop() {
        if pol[id.index()] & p == p {
            continue;
        }
        pol[id.index()] |= p;
        if let AigNode::And { f0, f1 } = aig.node(id) {
            for f in [f0, f1] {
                let child_p = if f.is_complement() { flip_pol(p) } else { p };
                stack.push((f.node(), child_p));
            }
        }
    }
    // 2. Emit clauses per polarity, bottom-up.
    let mut map: HashMap<NodeId, Lit> = bind.clone();
    let mut order = vec![root.node()];
    let mut visit = vec![false; aig.node_count()];
    let mut topo = Vec::new();
    while let Some(&id) = order.last() {
        if visit[id.index()] {
            order.pop();
            continue;
        }
        match aig.node(id) {
            AigNode::And { f0, f1 } => {
                let pending: Vec<NodeId> = [f0.node(), f1.node()]
                    .into_iter()
                    .filter(|n| !visit[n.index()])
                    .collect();
                if pending.is_empty() {
                    visit[id.index()] = true;
                    topo.push(id);
                    order.pop();
                } else {
                    order.extend(pending);
                }
            }
            _ => {
                visit[id.index()] = true;
                topo.push(id);
                order.pop();
            }
        }
    }
    for id in topo {
        if map.contains_key(&id) {
            continue;
        }
        match aig.node(id) {
            AigNode::Const => {
                let l = Lit::pos(cnf.new_var());
                cnf.add_unit(!l);
                map.insert(id, l);
            }
            AigNode::Input { .. } | AigNode::Latch { .. } => {
                map.insert(id, Lit::pos(cnf.new_var()));
            }
            AigNode::And { f0, f1 } => {
                let a = map[&f0.node()].xor_sign(f0.is_complement());
                let b = map[&f1.node()].xor_sign(f1.is_complement());
                let g = Lit::pos(cnf.new_var());
                let p = pol[id.index()];
                if p & 1 != 0 {
                    // g → a ∧ b
                    cnf.add_clause([!g, a]);
                    cnf.add_clause([!g, b]);
                }
                if p & 2 != 0 {
                    // a ∧ b → g
                    cnf.add_clause([g, !a, !b]);
                }
                map.insert(id, g);
            }
        }
    }
    let l = map[&root.node()].xor_sign(root.is_complement());
    (l, map)
}

#[inline]
fn flip_pol(p: u8) -> u8 {
    match p {
        1 => 2,
        2 => 1,
        _ => 3,
    }
}

/// Convenience: encodes `root` with all AIG inputs bound to freshly
/// allocated variables, returning `(cnf, input CNF literals, root
/// literal)` — inputs in AIG input order.
pub fn encode_standalone(aig: &Aig, root: AigLit) -> (Cnf, Vec<Lit>, Lit) {
    let mut cnf = Cnf::new();
    let mut enc = AigCnf::new();
    let inputs: Vec<Lit> = (0..aig.num_inputs())
        .map(|pi| {
            let l = Lit::pos(cnf.new_var());
            enc.bind(aig.input_node(pi), l);
            l
        })
        .collect();
    let r = enc.encode(&mut cnf, aig, root);
    (cnf, inputs, r)
}
