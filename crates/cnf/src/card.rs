//! Cardinality constraints.
//!
//! The paper's target constraints `fT` (equations (5), (6), (8)) are
//! cardinality bounds over products of the `α`/`β` control variables:
//! `Σ ᾱx·β̄x ≤ k` for disjointness and two-sided difference bounds for
//! balancedness. This module provides:
//!
//! * simple clause-level constraints ([`at_least_one`],
//!   [`at_most_one`], [`at_most_k`], …) with selectable encodings;
//! * a [`Totalizer`] with *exact* sorted unary outputs
//!   (`outputs[i] ⇔ count ≥ i+1`), plus difference constraints
//!   between two totalizers ([`assert_count_dominates`],
//!   [`assert_diff_le`]) used for the balancedness and combined
//!   targets, and for the `|XA| ≥ |XB|` symmetry breaking.
//!
//! ```
//! use step_cnf::{card::{at_most_k, CardEncoding}, Cnf, Lit};
//!
//! let mut cnf = Cnf::new();
//! let xs: Vec<Lit> = (0..4).map(|_| Lit::pos(cnf.new_var())).collect();
//! at_most_k(&mut cnf, &xs, 2, CardEncoding::Totalizer);
//! ```

use crate::cnf::Cnf;
use crate::lit::Lit;

/// Which clause encoding to use for `at_most_k`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CardEncoding {
    /// Naive: one clause per (k+1)-subset. Only sensible for tiny n.
    Pairwise,
    /// Sinz sequential counter (LTseq): O(n·k) clauses and variables.
    SequentialCounter,
    /// Totalizer with exact sorted outputs: O(n log n · k) clauses.
    #[default]
    Totalizer,
}

/// Adds `x1 ∨ … ∨ xn` (the paper's `AtLeast1` in `fN`).
///
/// An empty `lits` makes the formula unsatisfiable (empty clause).
pub fn at_least_one(cnf: &mut Cnf, lits: &[Lit]) {
    cnf.add_clause(lits.iter().copied());
}

/// Adds pairwise at-most-one over `lits`.
pub fn at_most_one(cnf: &mut Cnf, lits: &[Lit]) {
    for i in 0..lits.len() {
        for j in i + 1..lits.len() {
            cnf.add_clause([!lits[i], !lits[j]]);
        }
    }
}

/// Adds `Σ lits ≤ k` with the chosen encoding.
pub fn at_most_k(cnf: &mut Cnf, lits: &[Lit], k: usize, enc: CardEncoding) {
    if k >= lits.len() {
        return; // trivially true
    }
    if k == 0 {
        for &l in lits {
            cnf.add_unit(!l);
        }
        return;
    }
    match enc {
        CardEncoding::Pairwise => {
            // Every (k+1)-subset has a false literal.
            let mut idx: Vec<usize> = (0..=k).collect();
            loop {
                cnf.add_clause(idx.iter().map(|&i| !lits[i]));
                // Next combination.
                let mut i = k + 1;
                loop {
                    if i == 0 {
                        return;
                    }
                    i -= 1;
                    if idx[i] != i + lits.len() - (k + 1) {
                        break;
                    }
                    if i == 0 {
                        return;
                    }
                }
                idx[i] += 1;
                for j in i + 1..=k {
                    idx[j] = idx[j - 1] + 1;
                }
            }
        }
        CardEncoding::SequentialCounter => sequential_counter_amk(cnf, lits, k),
        CardEncoding::Totalizer => {
            let tot = Totalizer::new(cnf, lits);
            tot.assert_le(cnf, k);
        }
    }
}

/// Adds `Σ lits ≥ k` (via `at_most (n−k)` over the negations).
pub fn at_least_k(cnf: &mut Cnf, lits: &[Lit], k: usize, enc: CardEncoding) {
    if k == 0 {
        return;
    }
    if k > lits.len() {
        cnf.add_clause([]); // unsatisfiable
        return;
    }
    let negs: Vec<Lit> = lits.iter().map(|&l| !l).collect();
    at_most_k(cnf, &negs, lits.len() - k, enc);
}

/// Adds `Σ lits = k`.
pub fn exactly_k(cnf: &mut Cnf, lits: &[Lit], k: usize, enc: CardEncoding) {
    at_most_k(cnf, lits, k, enc);
    at_least_k(cnf, lits, k, enc);
}

fn sequential_counter_amk(cnf: &mut Cnf, lits: &[Lit], k: usize) {
    let n = lits.len();
    debug_assert!(k >= 1 && k < n);
    // s[i][j]: among lits[0..=i] at least j+1 are true (registers).
    let mut s = vec![vec![Lit::pos(crate::lit::Var::new(0)); k]; n];
    for row in s.iter_mut().take(n) {
        for cell in row.iter_mut() {
            *cell = Lit::pos(cnf.new_var());
        }
    }
    cnf.add_clause([!lits[0], s[0][0]]);
    for j in 1..k {
        cnf.add_unit(!s[0][j]);
    }
    for i in 1..n {
        cnf.add_clause([!lits[i], s[i][0]]);
        cnf.add_clause([!s[i - 1][0], s[i][0]]);
        for j in 1..k {
            cnf.add_clause([!lits[i], !s[i - 1][j - 1], s[i][j]]);
            cnf.add_clause([!s[i - 1][j], s[i][j]]);
        }
        cnf.add_clause([!lits[i], !s[i - 1][k - 1]]);
    }
}

/// A totalizer: sorted unary outputs exactly equivalent to the count of
/// true input literals (`outputs()[i] ⇔ count ≥ i+1`).
///
/// Exactness (both implication directions are encoded) is required for
/// the difference constraints used by the balancedness target.
#[derive(Clone, Debug)]
pub struct Totalizer {
    outputs: Vec<Lit>,
}

impl Totalizer {
    /// Builds the totalizer tree over `lits` inside `cnf`.
    pub fn new(cnf: &mut Cnf, lits: &[Lit]) -> Self {
        let outputs = build_tree(cnf, lits);
        Totalizer { outputs }
    }

    /// The sorted unary outputs (`outputs()[i] ⇔ count ≥ i+1`).
    pub fn outputs(&self) -> &[Lit] {
        &self.outputs
    }

    /// Number of input literals.
    pub fn len(&self) -> usize {
        self.outputs.len()
    }

    /// Whether the totalizer has no inputs.
    pub fn is_empty(&self) -> bool {
        self.outputs.is_empty()
    }

    /// The literal equivalent to `count ≥ k` (`None` for `k == 0`,
    /// which is trivially true, and for `k > n`, trivially false).
    pub fn count_ge(&self, k: usize) -> Option<Lit> {
        if k == 0 || k > self.outputs.len() {
            None
        } else {
            Some(self.outputs[k - 1])
        }
    }

    /// Asserts `count ≤ k`.
    pub fn assert_le(&self, cnf: &mut Cnf, k: usize) {
        if let Some(l) = self.count_ge(k + 1) {
            cnf.add_unit(!l);
        }
    }

    /// Asserts `count ≥ k`; unsatisfiable if `k > n`.
    pub fn assert_ge(&self, cnf: &mut Cnf, k: usize) {
        if k == 0 {
            return;
        }
        match self.count_ge(k) {
            Some(l) => cnf.add_unit(l),
            None => cnf.add_clause([]),
        }
    }
}

fn build_tree(cnf: &mut Cnf, lits: &[Lit]) -> Vec<Lit> {
    match lits.len() {
        0 => Vec::new(),
        1 => vec![lits[0]],
        n => {
            let mid = n / 2;
            let left = build_tree(cnf, &lits[..mid]);
            let right = build_tree(cnf, &lits[mid..]);
            merge(cnf, &left, &right)
        }
    }
}

fn merge(cnf: &mut Cnf, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
    let (la, lb) = (a.len(), b.len());
    let r: Vec<Lit> = (0..la + lb).map(|_| Lit::pos(cnf.new_var())).collect();
    for i in 0..=la {
        for j in 0..=lb {
            // C1: count(a) ≥ i ∧ count(b) ≥ j → count(r) ≥ i+j.
            if i + j >= 1 {
                let mut c = Vec::with_capacity(3);
                if i >= 1 {
                    c.push(!a[i - 1]);
                }
                if j >= 1 {
                    c.push(!b[j - 1]);
                }
                c.push(r[i + j - 1]);
                cnf.add_clause(c);
            }
            // C2: count(r) ≥ i+j+1 → count(a) ≥ i+1 ∨ count(b) ≥ j+1.
            if i + j < la + lb {
                let mut c = Vec::with_capacity(3);
                c.push(!r[i + j]);
                if i < la {
                    c.push(a[i]);
                }
                if j < lb {
                    c.push(b[j]);
                }
                cnf.add_clause(c);
            }
        }
    }
    r
}

/// Asserts `count(a) ≥ count(b)` over two *exact* totalizers — the
/// paper's `|XA| ≥ |XB|` symmetry-breaking constraint.
pub fn assert_count_dominates(cnf: &mut Cnf, a: &Totalizer, b: &Totalizer) {
    for i in 0..b.len() {
        match a.count_ge(i + 1) {
            Some(al) => cnf.add_clause([!b.outputs[i], al]),
            None => cnf.add_unit(!b.outputs[i]),
        }
    }
}

/// Asserts `count(a) − count(b) ≤ k` over two *exact* totalizers — one
/// side of the balancedness window (equation (6)).
pub fn assert_diff_le(cnf: &mut Cnf, a: &Totalizer, b: &Totalizer, k: usize) {
    for j in k..a.len() {
        // count(a) ≥ j+1 → count(b) ≥ j+1−k.
        let need = j + 1 - k;
        match b.count_ge(need) {
            Some(bl) => cnf.add_clause([!a.outputs[j], bl]),
            None => cnf.add_unit(!a.outputs[j]),
        }
    }
}
