//! DIMACS CNF and QDIMACS readers/writers.

use std::error::Error;
use std::fmt;

use crate::cnf::Cnf;
use crate::lit::Lit;

/// Error raised on malformed DIMACS/QDIMACS input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimacsError(String);

impl fmt::Display for DimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dimacs error: {}", self.0)
    }
}

impl Error for DimacsError {}

/// Quantifier kind for QDIMACS prefixes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Quant {
    /// Existential (`e` line).
    Exists,
    /// Universal (`a` line).
    Forall,
}

/// A parsed QDIMACS file: a quantifier prefix over a CNF matrix.
#[derive(Clone, Debug)]
pub struct QdimacsFile {
    /// Quantifier blocks, outermost first. Variables are 0-based.
    pub prefix: Vec<(Quant, Vec<usize>)>,
    /// The matrix.
    pub matrix: Cnf,
}

/// Parses a DIMACS CNF file.
///
/// # Errors
///
/// Returns [`DimacsError`] if the header is missing/ill-formed or a
/// clause is not 0-terminated.
pub fn parse_dimacs(text: &str) -> Result<Cnf, DimacsError> {
    let parsed = parse_inner(text, false)?;
    Ok(parsed.matrix)
}

/// Parses a QDIMACS file (quantifier lines `a`/`e` after the header).
///
/// # Errors
///
/// Returns [`DimacsError`] on malformed headers, prefixes or clauses.
pub fn parse_qdimacs(text: &str) -> Result<QdimacsFile, DimacsError> {
    parse_inner(text, true)
}

fn parse_inner(text: &str, allow_prefix: bool) -> Result<QdimacsFile, DimacsError> {
    let mut cnf: Option<Cnf> = None;
    let mut prefix: Vec<(Quant, Vec<usize>)> = Vec::new();
    let mut current: Vec<Lit> = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('p') {
            let toks: Vec<&str> = rest.split_whitespace().collect();
            if toks.len() != 3 || toks[0] != "cnf" {
                return Err(DimacsError("expected `p cnf V C`".into()));
            }
            let v: usize = toks[1]
                .parse()
                .map_err(|_| DimacsError(format!("bad variable count `{}`", toks[1])))?;
            cnf = Some(Cnf::with_vars(v));
            continue;
        }
        let Some(cnf) = cnf.as_mut() else {
            return Err(DimacsError("clause before `p cnf` header".into()));
        };
        if (line.starts_with('a') || line.starts_with('e'))
            && line[1..]
                .trim_start()
                .starts_with(|c: char| c.is_ascii_digit() || c == '-')
        {
            if !allow_prefix {
                return Err(DimacsError("quantifier line in plain CNF".into()));
            }
            let quant = if line.starts_with('a') {
                Quant::Forall
            } else {
                Quant::Exists
            };
            let mut vars = Vec::new();
            for tok in line[1..].split_whitespace() {
                let n: i64 = tok
                    .parse()
                    .map_err(|_| DimacsError(format!("bad prefix token `{tok}`")))?;
                if n == 0 {
                    break;
                }
                if n < 0 {
                    return Err(DimacsError("negative variable in prefix".into()));
                }
                let idx = n as usize - 1;
                cnf.ensure_vars(idx + 1);
                vars.push(idx);
            }
            prefix.push((quant, vars));
            continue;
        }
        for tok in line.split_whitespace() {
            let n: i64 = tok
                .parse()
                .map_err(|_| DimacsError(format!("bad literal `{tok}`")))?;
            if n == 0 {
                cnf.ensure_vars(
                    current
                        .iter()
                        .map(|l| l.var().index() + 1)
                        .max()
                        .unwrap_or(0),
                );
                cnf.add_clause(current.drain(..));
            } else {
                current.push(Lit::from_dimacs(n));
            }
        }
    }
    if !current.is_empty() {
        return Err(DimacsError("last clause not 0-terminated".into()));
    }
    let matrix = cnf.ok_or_else(|| DimacsError("missing `p cnf` header".into()))?;
    Ok(QdimacsFile { prefix, matrix })
}

/// Serializes a [`Cnf`] in DIMACS format.
pub fn write_dimacs(cnf: &Cnf) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "p cnf {} {}", cnf.num_vars(), cnf.num_clauses());
    for clause in cnf.clauses() {
        for l in clause {
            let _ = write!(out, "{} ", l.to_dimacs());
        }
        let _ = writeln!(out, "0");
    }
    out
}

/// Serializes a prefix + matrix in QDIMACS format.
pub fn write_qdimacs(prefix: &[(Quant, Vec<usize>)], matrix: &Cnf) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "p cnf {} {}", matrix.num_vars(), matrix.num_clauses());
    for (q, vars) in prefix {
        let c = match q {
            Quant::Exists => 'e',
            Quant::Forall => 'a',
        };
        let _ = write!(out, "{c}");
        for v in vars {
            let _ = write!(out, " {}", v + 1);
        }
        let _ = writeln!(out, " 0");
    }
    for clause in matrix.clauses() {
        for l in clause {
            let _ = write!(out, "{} ", l.to_dimacs());
        }
        let _ = writeln!(out, "0");
    }
    out
}
