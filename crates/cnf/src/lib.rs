//! CNF layer shared by the SAT, QBF and MUS engines.
//!
//! Provides:
//!
//! * [`Var`] / [`Lit`] — 0-based variables and sign-encoded literals;
//! * [`Cnf`] — a clause database with DIMACS/QDIMACS I/O;
//! * [`tseitin`] — Tseitin encoding of AIG cones into CNF;
//! * [`card`] — cardinality encodings (pairwise, sequential counter,
//!   totalizer with sorted unary outputs), the building blocks of the
//!   paper's target constraints `fT` (equations (5), (6) and (8)).
//!
//! # Example
//!
//! ```
//! use step_cnf::{Cnf, Lit};
//!
//! let mut cnf = Cnf::new();
//! let x = cnf.new_var();
//! let y = cnf.new_var();
//! cnf.add_clause([Lit::pos(x), Lit::pos(y)]);
//! cnf.add_clause([Lit::neg(x)]);
//! assert_eq!(cnf.num_clauses(), 2);
//! ```

mod cnf;
mod dimacs;
mod lit;

pub mod card;
pub mod tseitin;

pub use cnf::Cnf;
pub use dimacs::{
    parse_dimacs, parse_qdimacs, write_dimacs, write_qdimacs, DimacsError, QdimacsFile, Quant,
};
pub use lit::{Lit, Var};

#[cfg(test)]
mod tests;
