use crate::card::{
    assert_count_dominates, assert_diff_le, at_least_k, at_least_one, at_most_k, at_most_one,
    exactly_k, CardEncoding, Totalizer,
};
use crate::tseitin::{encode_standalone, AigCnf};
use crate::{parse_dimacs, parse_qdimacs, write_dimacs, write_qdimacs, Cnf, Lit, Quant, Var};

/// All assignments over the first `n_orig` variables that can be
/// extended (over the remaining variables) to a model of `cnf`,
/// reported as bitmasks (bit i = value of variable i).
fn projected_models(cnf: &Cnf, n_orig: usize) -> Vec<usize> {
    let n = cnf.num_vars();
    assert!(n <= 24, "brute force capped at 24 variables, got {n}");
    let mut found = vec![false; 1 << n_orig];
    for m in 0..1usize << n {
        let assignment: Vec<bool> = (0..n).map(|i| m >> i & 1 == 1).collect();
        if cnf.eval(&assignment) {
            found[m & ((1 << n_orig) - 1)] = true;
        }
    }
    (0..1 << n_orig).filter(|&m| found[m]).collect()
}

fn fresh_lits(cnf: &mut Cnf, n: usize) -> Vec<Lit> {
    (0..n).map(|_| Lit::pos(cnf.new_var())).collect()
}

#[test]
fn lit_and_var_basics() {
    let v = Var::new(4);
    let p = Lit::pos(v);
    assert_eq!(p.var(), v);
    assert!(!p.is_neg());
    assert!((!p).is_neg());
    assert_eq!(!!p, p);
    assert_eq!(p.to_dimacs(), 5);
    assert_eq!((!p).to_dimacs(), -5);
    assert_eq!(Lit::from_dimacs(5), p);
    assert_eq!(Lit::from_dimacs(-5), !p);
    assert_eq!(p.xor_sign(true), !p);
    assert_eq!(Lit::new(v, true), !p);
    let mut a = vec![false; 5];
    a[4] = true;
    assert!(p.eval(&a));
    assert!(!(!p).eval(&a));
}

#[test]
#[should_panic]
fn dimacs_zero_literal_panics() {
    let _ = Lit::from_dimacs(0);
}

#[test]
fn cnf_eval_and_helpers() {
    let mut cnf = Cnf::new();
    let x = Lit::pos(cnf.new_var());
    let y = Lit::pos(cnf.new_var());
    cnf.add_clause([x, y]);
    cnf.add_implies(x, y);
    assert!(cnf.eval(&[true, true]));
    assert!(cnf.eval(&[false, true]));
    assert!(!cnf.eval(&[true, false]));
    assert!(!cnf.eval(&[false, false]));
    let mut c2 = Cnf::new();
    let a = Lit::pos(c2.new_var());
    let b = Lit::pos(c2.new_var());
    c2.add_iff(a, b);
    assert!(c2.eval(&[true, true]));
    assert!(c2.eval(&[false, false]));
    assert!(!c2.eval(&[true, false]));
}

#[test]
fn cnf_simplified_removes_tautologies() {
    let mut cnf = Cnf::new();
    let x = Lit::pos(cnf.new_var());
    let y = Lit::pos(cnf.new_var());
    cnf.add_clause([x, !x]);
    cnf.add_clause([y, y, x]);
    let s = cnf.simplified();
    assert_eq!(s.num_clauses(), 1);
    assert_eq!(s.clauses()[0].len(), 2);
}

#[test]
fn dimacs_round_trip() {
    let text = "c comment\np cnf 3 2\n1 -2 0\n2 3 0\n";
    let cnf = parse_dimacs(text).unwrap();
    assert_eq!(cnf.num_vars(), 3);
    assert_eq!(cnf.num_clauses(), 2);
    let back = parse_dimacs(&write_dimacs(&cnf)).unwrap();
    assert_eq!(back.clauses(), cnf.clauses());
}

#[test]
fn dimacs_rejects_malformed() {
    assert!(parse_dimacs("1 2 0").is_err(), "missing header");
    assert!(parse_dimacs("p cnf x 2\n").is_err(), "bad header");
    assert!(
        parse_dimacs("p cnf 2 1\n1 2\n").is_err(),
        "unterminated clause"
    );
    assert!(
        parse_dimacs("p cnf 2 1\na 1 0\n1 0").is_err(),
        "prefix in plain cnf"
    );
}

#[test]
fn qdimacs_round_trip() {
    let text = "p cnf 4 2\na 1 2 0\ne 3 4 0\n1 3 0\n-2 4 0\n";
    let q = parse_qdimacs(text).unwrap();
    assert_eq!(q.prefix.len(), 2);
    assert_eq!(q.prefix[0], (Quant::Forall, vec![0, 1]));
    assert_eq!(q.prefix[1], (Quant::Exists, vec![2, 3]));
    let back = parse_qdimacs(&write_qdimacs(&q.prefix, &q.matrix)).unwrap();
    assert_eq!(back.prefix, q.prefix);
    assert_eq!(back.matrix.clauses(), q.matrix.clauses());
}

// ---------------------------------------------------------------------
// Tseitin
// ---------------------------------------------------------------------

#[test]
fn tseitin_encodes_function_exactly() {
    let mut aig = step_aig::Aig::new();
    let a = aig.add_input("a");
    let b = aig.add_input("b");
    let c = aig.add_input("c");
    let t = aig.xor(a, b);
    let f = aig.mux(c, t, a);
    aig.add_output("f", f);

    let (mut cnf, inputs, root) = encode_standalone(&aig, f);
    // Reserve a fresh var aliased to root so it is among the first vars.
    let o = Lit::pos(cnf.new_var());
    cnf.add_iff(o, root);
    // Project models onto (inputs..., o): o must equal f(inputs).
    // inputs are vars 0..3, o is some later var — remap by checking all
    // models directly.
    let n = cnf.num_vars();
    assert!(n <= 24);
    let mut seen = std::collections::HashSet::new();
    for m in 0..1usize << n {
        let assignment: Vec<bool> = (0..n).map(|i| m >> i & 1 == 1).collect();
        if cnf.eval(&assignment) {
            let ins: Vec<bool> = inputs.iter().map(|l| l.eval(&assignment)).collect();
            let want = aig.eval(&ins)[0];
            assert_eq!(o.eval(&assignment), want, "tseitin root must equal f");
            seen.insert(ins);
        }
    }
    assert_eq!(seen.len(), 8, "every input assignment must be extendable");
}

#[test]
fn tseitin_shares_nodes_across_roots() {
    let mut aig = step_aig::Aig::new();
    let a = aig.add_input("a");
    let b = aig.add_input("b");
    let t = aig.and(a, b);
    let f = aig.or(t, a);

    let mut cnf = Cnf::new();
    let mut enc = AigCnf::new();
    let lt = enc.encode(&mut cnf, &aig, t);
    let n_after_t = cnf.num_vars();
    let lf = enc.encode(&mut cnf, &aig, f);
    assert_ne!(lt, lf);
    // Encoding f reuses the t node: only the OR gate is new.
    assert_eq!(cnf.num_vars(), n_after_t + 1);
    assert_eq!(enc.lit(t), lt);
    assert_eq!(enc.lit(!t), !lt);
}

#[test]
fn tseitin_constant_root() {
    let aig = step_aig::Aig::new();
    let mut cnf = Cnf::new();
    let mut enc = AigCnf::new();
    let l = enc.encode(&mut cnf, &aig, step_aig::AigLit::TRUE);
    cnf.add_unit(l);
    assert!(
        !projected_models(&cnf, 0).is_empty(),
        "TRUE must be satisfiable"
    );
    let mut cnf2 = Cnf::new();
    let mut enc2 = AigCnf::new();
    let l2 = enc2.encode(&mut cnf2, &aig, step_aig::AigLit::FALSE);
    cnf2.add_unit(l2);
    assert!(
        projected_models(&cnf2, 0).is_empty(),
        "FALSE must be unsatisfiable"
    );
}

#[test]
fn plaisted_greenbaum_equisatisfiable() {
    use crate::tseitin::encode_plaisted_greenbaum;
    // f = (a ⊕ b) ∧ ¬c asserted true: PG encoding must admit exactly
    // the satisfying input assignments of full Tseitin, with fewer
    // clauses.
    let mut aig = step_aig::Aig::new();
    let a = aig.add_input("a");
    let b = aig.add_input("b");
    let c = aig.add_input("c");
    let x = aig.xor(a, b);
    let f = aig.and(x, !c);

    let mut full = Cnf::new();
    let mut enc = AigCnf::new();
    let in_full: Vec<Lit> = (0..3)
        .map(|i| {
            let l = Lit::pos(full.new_var());
            enc.bind(aig.input_node(i), l);
            l
        })
        .collect();
    let rf = enc.encode(&mut full, &aig, f);
    full.add_unit(rf);

    let mut pg = Cnf::new();
    let mut bind = std::collections::HashMap::new();
    let in_pg: Vec<Lit> = (0..3)
        .map(|i| {
            let l = Lit::pos(pg.new_var());
            bind.insert(aig.input_node(i), l);
            l
        })
        .collect();
    let (rp, _) = encode_plaisted_greenbaum(&mut pg, &aig, f, &bind);
    pg.add_unit(rp);

    assert!(pg.num_clauses() < full.num_clauses(), "PG must be smaller");
    let full_models: std::collections::HashSet<Vec<bool>> = projected_models(&full, 3)
        .into_iter()
        .map(|m| {
            in_full
                .iter()
                .map(|l| l.eval(&[m & 1 == 1, m >> 1 & 1 == 1, m >> 2 & 1 == 1]))
                .collect()
        })
        .collect();
    let pg_models: std::collections::HashSet<Vec<bool>> = projected_models(&pg, 3)
        .into_iter()
        .map(|m| {
            in_pg
                .iter()
                .map(|l| l.eval(&[m & 1 == 1, m >> 1 & 1 == 1, m >> 2 & 1 == 1]))
                .collect()
        })
        .collect();
    assert_eq!(full_models, pg_models);
    // Ground truth: assignments with f = 1.
    for m in 0..8usize {
        let v = vec![m & 1 == 1, m >> 1 & 1 == 1, m >> 2 & 1 == 1];
        let want = (v[0] ^ v[1]) && !v[2];
        assert_eq!(pg_models.contains(&v), want, "at {v:?}");
    }
}

// ---------------------------------------------------------------------
// Cardinality
// ---------------------------------------------------------------------

fn check_amk(n: usize, k: usize, enc: CardEncoding) {
    let mut cnf = Cnf::new();
    let lits = fresh_lits(&mut cnf, n);
    at_most_k(&mut cnf, &lits, k, enc);
    if cnf.num_vars() > 24 {
        return; // brute-force budget exceeded; covered by smaller cases
    }
    let models = projected_models(&cnf, n);
    let want: Vec<usize> = (0..1usize << n)
        .filter(|m| (m.count_ones() as usize) <= k)
        .collect();
    assert_eq!(models, want, "AMK n={n} k={k} enc={enc:?}");
}

#[test]
fn at_most_k_all_encodings() {
    for n in 1..=5 {
        for k in 0..=n {
            check_amk(n, k, CardEncoding::Pairwise);
            check_amk(n, k, CardEncoding::SequentialCounter);
            check_amk(n, k, CardEncoding::Totalizer);
        }
    }
}

#[test]
fn at_least_and_exactly() {
    for n in 1..=4 {
        for k in 0..=n + 1 {
            let mut cnf = Cnf::new();
            let lits = fresh_lits(&mut cnf, n);
            at_least_k(&mut cnf, &lits, k, CardEncoding::Totalizer);
            let models = projected_models(&cnf, n);
            let want: Vec<usize> = (0..1usize << n)
                .filter(|m| (m.count_ones() as usize) >= k)
                .collect();
            assert_eq!(models, want, "ALK n={n} k={k}");

            if k <= n {
                let mut cnf = Cnf::new();
                let lits = fresh_lits(&mut cnf, n);
                exactly_k(&mut cnf, &lits, k, CardEncoding::SequentialCounter);
                let models = projected_models(&cnf, n);
                let want: Vec<usize> = (0..1usize << n)
                    .filter(|m| (m.count_ones() as usize) == k)
                    .collect();
                assert_eq!(models, want, "EK n={n} k={k}");
            }
        }
    }
}

#[test]
fn at_most_one_and_at_least_one() {
    let mut cnf = Cnf::new();
    let lits = fresh_lits(&mut cnf, 4);
    at_most_one(&mut cnf, &lits);
    at_least_one(&mut cnf, &lits);
    let models = projected_models(&cnf, 4);
    assert_eq!(models, vec![1, 2, 4, 8]);

    let mut unsat = Cnf::new();
    at_least_one(&mut unsat, &[]);
    assert!(projected_models(&unsat, 0).is_empty());
}

#[test]
fn totalizer_outputs_are_exact() {
    for n in 1..=5 {
        let mut cnf = Cnf::new();
        let lits = fresh_lits(&mut cnf, n);
        let tot = Totalizer::new(&mut cnf, &lits);
        assert_eq!(tot.len(), n);
        let nv = cnf.num_vars();
        for m in 0..1usize << nv {
            let assignment: Vec<bool> = (0..nv).map(|i| m >> i & 1 == 1).collect();
            if cnf.eval(&assignment) {
                let count = lits.iter().filter(|l| l.eval(&assignment)).count();
                for (i, &o) in tot.outputs().iter().enumerate() {
                    assert_eq!(
                        o.eval(&assignment),
                        count > i,
                        "totalizer output {i} inexact for n={n}"
                    );
                }
            }
        }
    }
}

#[test]
fn totalizer_bounds() {
    let mut cnf = Cnf::new();
    let lits = fresh_lits(&mut cnf, 4);
    let tot = Totalizer::new(&mut cnf, &lits);
    tot.assert_ge(&mut cnf, 1);
    tot.assert_le(&mut cnf, 2);
    let models = projected_models(&cnf, 4);
    let want: Vec<usize> = (0..16)
        .filter(|m: &usize| (1..=2).contains(&(m.count_ones() as usize)))
        .collect();
    assert_eq!(models, want);
    // count_ge edges
    assert!(tot.count_ge(0).is_none());
    assert!(tot.count_ge(5).is_none());
    assert!(tot.count_ge(4).is_some());
}

#[test]
fn totalizer_empty_and_unsat_ge() {
    let mut cnf = Cnf::new();
    let tot = Totalizer::new(&mut cnf, &[]);
    assert!(tot.is_empty());
    tot.assert_le(&mut cnf, 0); // trivially true
    assert!(!projected_models(&cnf, 0).is_empty());
    tot.assert_ge(&mut cnf, 1); // impossible
    assert!(projected_models(&cnf, 0).is_empty());
}

#[test]
fn count_dominates() {
    // 2 a-lits, 2 b-lits: require count(a) >= count(b).
    let mut cnf = Cnf::new();
    let a = fresh_lits(&mut cnf, 2);
    let b = fresh_lits(&mut cnf, 2);
    let ta = Totalizer::new(&mut cnf, &a);
    let tb = Totalizer::new(&mut cnf, &b);
    assert_count_dominates(&mut cnf, &ta, &tb);
    let models = projected_models(&cnf, 4);
    let want: Vec<usize> = (0..16)
        .filter(|m| {
            let ca = (m & 1) + (m >> 1 & 1);
            let cb = (m >> 2 & 1) + (m >> 3 & 1);
            ca >= cb
        })
        .collect();
    assert_eq!(models, want);
}

#[test]
fn diff_le_window() {
    // count(a) - count(b) <= 1 with 3 a-lits and 2 b-lits.
    let mut cnf = Cnf::new();
    let a = fresh_lits(&mut cnf, 3);
    let b = fresh_lits(&mut cnf, 2);
    let ta = Totalizer::new(&mut cnf, &a);
    let tb = Totalizer::new(&mut cnf, &b);
    assert_diff_le(&mut cnf, &ta, &tb, 1);
    let models = projected_models(&cnf, 5);
    let want: Vec<usize> = (0..32)
        .filter(|m| {
            let ca = (m & 1) + (m >> 1 & 1) + (m >> 2 & 1);
            let cb = (m >> 3 & 1) + (m >> 4 & 1);
            ca as i64 - cb as i64 <= 1
        })
        .collect();
    assert_eq!(models, want);
}

#[test]
fn diff_le_zero_means_dominated() {
    let mut cnf = Cnf::new();
    let a = fresh_lits(&mut cnf, 2);
    let b = fresh_lits(&mut cnf, 2);
    let ta = Totalizer::new(&mut cnf, &a);
    let tb = Totalizer::new(&mut cnf, &b);
    assert_diff_le(&mut cnf, &ta, &tb, 0);
    let models = projected_models(&cnf, 4);
    let want: Vec<usize> = (0..16)
        .filter(|m| {
            let ca = (m & 1) + (m >> 1 & 1);
            let cb = (m >> 2 & 1) + (m >> 3 & 1);
            ca <= cb
        })
        .collect();
    assert_eq!(models, want);
}

mod props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn amk_equivalent_encodings(n in 1usize..5, k in 0usize..5) {
            let k = k.min(n);
            let mut models = Vec::new();
            for enc in [
                CardEncoding::Pairwise,
                CardEncoding::SequentialCounter,
                CardEncoding::Totalizer,
            ] {
                let mut cnf = Cnf::new();
                let lits = fresh_lits(&mut cnf, n);
                at_most_k(&mut cnf, &lits, k, enc);
                models.push(projected_models(&cnf, n));
            }
            prop_assert_eq!(&models[0], &models[1]);
            prop_assert_eq!(&models[0], &models[2]);
        }

        #[test]
        fn diff_constraints_match_naive(na in 1usize..4, nb in 1usize..4, k in 0usize..4) {
            let mut cnf = Cnf::new();
            let a = fresh_lits(&mut cnf, na);
            let b = fresh_lits(&mut cnf, nb);
            let ta = Totalizer::new(&mut cnf, &a);
            let tb = Totalizer::new(&mut cnf, &b);
            assert_diff_le(&mut cnf, &ta, &tb, k);
            let models = projected_models(&cnf, na + nb);
            let want: Vec<usize> = (0..1usize << (na + nb))
                .filter(|m| {
                    let ca = (0..na).filter(|i| m >> i & 1 == 1).count() as i64;
                    let cb = (0..nb).filter(|i| m >> (na + i) & 1 == 1).count() as i64;
                    ca - cb <= k as i64
                })
                .collect();
            prop_assert_eq!(models, want);
        }
    }
}
