use std::fmt;

use crate::lit::{Lit, Var};

/// A CNF formula: a growable variable pool and a list of clauses.
///
/// Clauses are stored as given (no implicit simplification); tautologies
/// and duplicates can be removed explicitly with [`Cnf::simplified`].
#[derive(Clone, Default)]
pub struct Cnf {
    num_vars: usize,
    clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// Creates an empty formula with no variables.
    pub fn new() -> Self {
        Cnf::default()
    }

    /// Creates a formula with `num_vars` pre-allocated variables.
    pub fn with_vars(num_vars: usize) -> Self {
        Cnf {
            num_vars,
            clauses: Vec::new(),
        }
    }

    /// Allocates and returns a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::new(self.num_vars);
        self.num_vars += 1;
        v
    }

    /// Allocates `n` fresh variables.
    pub fn new_vars(&mut self, n: usize) -> Vec<Var> {
        (0..n).map(|_| self.new_var()).collect()
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Ensures at least `n` variables exist.
    pub fn ensure_vars(&mut self, n: usize) {
        self.num_vars = self.num_vars.max(n);
    }

    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Adds a clause (any `IntoIterator` of literals).
    ///
    /// # Panics
    ///
    /// Panics if a literal references an unallocated variable.
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) {
        let clause: Vec<Lit> = lits.into_iter().collect();
        for l in &clause {
            assert!(
                l.var().index() < self.num_vars,
                "literal {l} references unallocated variable"
            );
        }
        self.clauses.push(clause);
    }

    /// Adds a unit clause.
    pub fn add_unit(&mut self, lit: Lit) {
        self.add_clause([lit]);
    }

    /// Adds `a → b` as a binary clause.
    pub fn add_implies(&mut self, a: Lit, b: Lit) {
        self.add_clause([!a, b]);
    }

    /// Adds `a ↔ b` (two binary clauses).
    pub fn add_iff(&mut self, a: Lit, b: Lit) {
        self.add_clause([!a, b]);
        self.add_clause([a, !b]);
    }

    /// The clauses in insertion order.
    pub fn clauses(&self) -> &[Vec<Lit>] {
        &self.clauses
    }

    /// Appends all clauses of `other` (variables must already be
    /// allocated in `self`).
    pub fn extend_clauses(&mut self, other: &Cnf) {
        self.ensure_vars(other.num_vars);
        self.clauses.extend(other.clauses.iter().cloned());
    }

    /// Evaluates the formula under a full assignment.
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() < self.num_vars()`.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        assert!(assignment.len() >= self.num_vars, "assignment too short");
        self.clauses
            .iter()
            .all(|c| c.iter().any(|l| l.eval(assignment)))
    }

    /// Returns a copy with tautological clauses dropped and duplicate
    /// literals removed inside each clause.
    pub fn simplified(&self) -> Cnf {
        let mut out = Cnf::with_vars(self.num_vars);
        'next: for clause in &self.clauses {
            let mut c = clause.clone();
            c.sort_unstable();
            c.dedup();
            for w in c.windows(2) {
                if w[0].var() == w[1].var() {
                    continue 'next; // x ∨ ¬x
                }
            }
            out.clauses.push(c);
        }
        out
    }
}

impl fmt::Debug for Cnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Cnf {{ vars: {}, clauses: {} }}",
            self.num_vars,
            self.clauses.len()
        )
    }
}
