use std::fmt;

/// A 0-based Boolean variable.
///
/// ```
/// use step_cnf::Var;
/// let v = Var::new(3);
/// assert_eq!(v.index(), 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(u32);

impl Var {
    /// Creates a variable from its 0-based index.
    #[inline]
    pub fn new(index: usize) -> Self {
        Var(index as u32)
    }

    /// The 0-based index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A literal: a variable with a sign, encoded as `var*2 + negated`.
///
/// ```
/// use step_cnf::{Lit, Var};
/// let x = Var::new(0);
/// assert_eq!(!Lit::pos(x), Lit::neg(x));
/// assert_eq!(Lit::pos(x).to_dimacs(), 1);
/// assert_eq!(Lit::neg(x).to_dimacs(), -1);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `var`.
    #[inline]
    pub fn pos(var: Var) -> Self {
        Lit(var.0 << 1)
    }

    /// The negative literal of `var`.
    #[inline]
    pub fn neg(var: Var) -> Self {
        Lit(var.0 << 1 | 1)
    }

    /// A literal of `var` with the given negation flag.
    #[inline]
    pub fn new(var: Var, negated: bool) -> Self {
        Lit(var.0 << 1 | negated as u32)
    }

    /// Builds a literal from its `var*2+sign` code.
    #[inline]
    pub fn from_code(code: u32) -> Self {
        Lit(code)
    }

    /// The `var*2+sign` code.
    #[inline]
    pub fn code(self) -> u32 {
        self.0
    }

    /// The underlying variable.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether this literal is negated.
    #[inline]
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    /// This literal with the sign XORed by `flip`.
    #[inline]
    pub fn xor_sign(self, flip: bool) -> Self {
        Lit(self.0 ^ flip as u32)
    }

    /// Parses a non-zero DIMACS integer (`-3` = ¬v2).
    ///
    /// # Panics
    ///
    /// Panics if `value == 0`.
    #[inline]
    pub fn from_dimacs(value: i64) -> Self {
        assert!(value != 0, "DIMACS literal cannot be 0");
        let var = Var::new(value.unsigned_abs() as usize - 1);
        Lit::new(var, value < 0)
    }

    /// The DIMACS representation (1-based, negative = negated).
    #[inline]
    pub fn to_dimacs(self) -> i64 {
        let v = (self.var().index() + 1) as i64;
        if self.is_neg() {
            -v
        } else {
            v
        }
    }

    /// Evaluates the literal under an assignment indexed by variable.
    #[inline]
    pub fn eval(self, assignment: &[bool]) -> bool {
        assignment[self.var().index()] ^ self.is_neg()
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}v{}",
            if self.is_neg() { "¬" } else { "" },
            self.var().index()
        )
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}
