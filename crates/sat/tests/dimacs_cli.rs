//! CLI smoke tests for the `dimacs_sat` front-end, pinning the
//! `--conflicts` argument validation (a bad value must be a usage
//! error, not silently ignored).

use std::process::Command;

fn dimacs_sat() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dimacs_sat"))
}

fn tmp_cnf(tag: &str, text: &str) -> std::path::PathBuf {
    let dir = std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).expect("create tmp dir");
    let path = dir.join(format!("dimacs_cli_{tag}.cnf"));
    std::fs::write(&path, text).expect("write cnf");
    path
}

#[test]
fn bad_conflicts_value_is_a_usage_error() {
    let path = tmp_cnf("bad", "p cnf 1 1\n1 0\n");
    for bad in ["abc", "-3", "1.5", ""] {
        let out = dimacs_sat()
            .arg(&path)
            .args(["--conflicts", bad])
            .output()
            .expect("spawn dimacs_sat");
        assert_eq!(out.status.code(), Some(2), "--conflicts {bad:?}");
        let err = String::from_utf8(out.stderr).unwrap();
        assert!(
            err.contains("--conflicts") && err.contains("usage:"),
            "stderr for {bad:?}: {err}"
        );
    }
}

#[test]
fn missing_conflicts_value_is_a_usage_error() {
    let path = tmp_cnf("missing", "p cnf 1 1\n1 0\n");
    let out = dimacs_sat()
        .arg(&path)
        .arg("--conflicts")
        .output()
        .expect("spawn dimacs_sat");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn good_conflicts_value_still_solves() {
    let path = tmp_cnf("good", "p cnf 2 2\n1 2 0\n-1 0\n");
    let out = dimacs_sat()
        .arg(&path)
        .args(["--conflicts", "1000"])
        .output()
        .expect("spawn dimacs_sat");
    // SAT competition convention: exit 10 = satisfiable.
    assert_eq!(out.status.code(), Some(10), "stderr: {:?}", out.stderr);
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("s SATISFIABLE"), "{text}");
}
