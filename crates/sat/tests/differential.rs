//! Differential testing of the CDCL kernel against a reference DPLL
//! oracle.
//!
//! Solver heuristics — restart policies, clause tiering, preprocessing
//! — are exactly where silent wrong-answer bugs breed: they reshape
//! the search without (supposedly) changing what it concludes. This
//! harness makes every heuristic falsifiable. A deliberately boring
//! DPLL decision procedure (no learning, no heuristics, ~100 lines,
//! small enough to audit by eye) is run against the full kernel over
//! thousands of random k-CNF instances spanning the under-constrained,
//! phase-transition and over-constrained regimes, and the kernel must
//! agree under *every* knob combination: `RestartPolicy::{Luby, Ema}`
//! × preprocessing on/off × tiered/sort-half clause management. SAT
//! models are checked against every clause, and UNSAT runs with proof
//! logging must replay end-to-end.

use step_cnf::{Lit, Var};
use step_sat::{ClauseDbPolicy, RestartPolicy, SolveResult, Solver};

// ---------------------------------------------------------------------
// The reference oracle: plain DPLL with unit propagation, first
// unassigned variable as decision, no learning, no heuristics.
// ---------------------------------------------------------------------

/// `Some(true)`/`Some(false)` after propagation, `None` if unassigned.
fn lit_value(assign: &[Option<bool>], l: Lit) -> Option<bool> {
    assign[l.var().index()].map(|v| v != l.is_neg())
}

/// Propagates units to a fixpoint. Returns `false` on an empty clause.
fn dpll_propagate(clauses: &[Vec<Lit>], assign: &mut [Option<bool>]) -> bool {
    loop {
        let mut changed = false;
        for c in clauses {
            let mut unassigned = None;
            let mut n_unassigned = 0;
            let mut satisfied = false;
            for &l in c {
                match lit_value(assign, l) {
                    Some(true) => {
                        satisfied = true;
                        break;
                    }
                    Some(false) => {}
                    None => {
                        unassigned = Some(l);
                        n_unassigned += 1;
                    }
                }
            }
            if satisfied {
                continue;
            }
            match (n_unassigned, unassigned) {
                (0, _) => return false, // falsified clause
                (1, Some(l)) => {
                    assign[l.var().index()] = Some(!l.is_neg());
                    changed = true;
                }
                _ => {}
            }
        }
        if !changed {
            return true;
        }
    }
}

/// Plain recursive DPLL. `true` iff the clause set is satisfiable.
fn dpll(clauses: &[Vec<Lit>], assign: &mut Vec<Option<bool>>) -> bool {
    if !dpll_propagate(clauses, assign) {
        return false;
    }
    let Some(v) = assign.iter().position(Option::is_none) else {
        return true; // all assigned, no clause falsified
    };
    for value in [true, false] {
        let saved = assign.clone();
        assign[v] = Some(value);
        if dpll(clauses, assign) {
            return true;
        }
        *assign = saved;
    }
    false
}

/// Oracle verdict for a formula over `nvars` variables.
fn oracle_sat(nvars: usize, clauses: &[Vec<Lit>]) -> bool {
    if clauses.iter().any(Vec::is_empty) {
        return false;
    }
    let mut assign = vec![None; nvars];
    dpll(clauses, &mut assign)
}

// ---------------------------------------------------------------------
// Deterministic random k-CNF generation (xorshift, no external deps).
// ---------------------------------------------------------------------

struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A random k-CNF instance: `nclauses` clauses of `k` distinct
/// variables each, random polarities.
fn random_kcnf(rng: &mut XorShift, nvars: usize, nclauses: usize, k: usize) -> Vec<Vec<Lit>> {
    (0..nclauses)
        .map(|_| {
            let mut vars: Vec<usize> = Vec::with_capacity(k);
            while vars.len() < k {
                let v = rng.below(nvars as u64) as usize;
                if !vars.contains(&v) {
                    vars.push(v);
                }
            }
            vars.into_iter()
                .map(|v| Lit::new(Var::new(v), rng.below(2) == 0))
                .collect()
        })
        .collect()
}

/// Every knob combination the kernel must agree across.
const CONFIGS: [(RestartPolicy, bool, ClauseDbPolicy); 4] = [
    (RestartPolicy::Luby, false, ClauseDbPolicy::Tiered),
    (RestartPolicy::Luby, true, ClauseDbPolicy::SortHalf),
    (RestartPolicy::Ema, false, ClauseDbPolicy::SortHalf),
    (RestartPolicy::Ema, true, ClauseDbPolicy::Tiered),
];

fn kernel(
    nvars: usize,
    clauses: &[Vec<Lit>],
    restarts: RestartPolicy,
    preprocess: bool,
    db: ClauseDbPolicy,
    proof: bool,
) -> (SolveResult, Solver) {
    let mut s = Solver::new();
    if proof {
        s.enable_proof();
    }
    s.set_restart_policy(restarts);
    s.set_preprocess(preprocess);
    s.set_clause_db_policy(db);
    s.ensure_vars(nvars);
    for c in clauses {
        s.add_clause(c.iter().copied());
    }
    let r = s.solve();
    (r, s)
}

/// Checks one instance across all configs against the oracle; on SAT,
/// validates the model clause by clause.
fn check_instance(nvars: usize, clauses: &[Vec<Lit>], ctx: &str) {
    let want = oracle_sat(nvars, clauses);
    for (restarts, preprocess, db) in CONFIGS {
        let (got, s) = kernel(nvars, clauses, restarts, preprocess, db, false);
        let verdict = match got {
            SolveResult::Sat => true,
            SolveResult::Unsat => false,
            SolveResult::Unknown => panic!("{ctx}: unbudgeted solve returned Unknown"),
        };
        assert_eq!(
            verdict, want,
            "{ctx}: kernel({restarts}, preprocess={preprocess}, {db:?}) disagrees with oracle"
        );
        if got == SolveResult::Sat {
            for (i, c) in clauses.iter().enumerate() {
                assert!(
                    c.iter().any(|&l| s.model_value(l) == Some(true)),
                    "{ctx}: model under ({restarts}, preprocess={preprocess}) \
                     falsifies clause {i}"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// The sweeps: thousands of instances at several clause/var ratios.
// ---------------------------------------------------------------------

/// 3-CNF at ratios spanning under-constrained (2.0), the ~4.27 phase
/// transition, and over-constrained (6.0) — the mix that exercises
/// deep search, frequent conflicts and quick refutations respectively.
#[test]
fn kernel_matches_dpll_oracle_on_random_3cnf() {
    let mut rng = XorShift(0x9E3779B97F4A7C15);
    for &(ratio_num, ratio_den) in &[(2u64, 1u64), (43, 10), (6, 1)] {
        for nvars in [8usize, 12, 16] {
            let nclauses = (nvars as u64 * ratio_num / ratio_den) as usize;
            for case in 0..150 {
                let clauses = random_kcnf(&mut rng, nvars, nclauses, 3);
                check_instance(
                    nvars,
                    &clauses,
                    &format!("3cnf r={ratio_num}/{ratio_den} n={nvars} case={case}"),
                );
            }
        }
    }
}

/// 2-CNF (implication-graph instances — heavy unit propagation) and
/// mixed-width clauses.
#[test]
fn kernel_matches_dpll_oracle_on_2cnf_and_mixed() {
    let mut rng = XorShift(0xD1B54A32D192ED03);
    for case in 0..400 {
        let nvars = 6 + (case % 8);
        let clauses = random_kcnf(&mut rng, nvars, 2 * nvars, 2);
        check_instance(nvars, &clauses, &format!("2cnf case={case}"));
    }
    for case in 0..400 {
        let nvars = 8 + (case % 6);
        // Mixed widths 1..=4: units and binaries feed the preprocessing
        // pass real strengthening/subsumption opportunities.
        let mut clauses = Vec::new();
        for k in 1..=4usize {
            clauses.extend(random_kcnf(&mut rng, nvars, nvars / k + 1, k));
        }
        check_instance(nvars, &clauses, &format!("mixed case={case}"));
    }
}

/// UNSAT answers must be stable across every knob combination *with
/// proof logging on*, and the proofs must replay end-to-end — the
/// lockdown for the tiering/subsumption/strengthening deletion paths.
#[test]
fn unsat_proofs_replay_under_all_heuristics() {
    let mut rng = XorShift(0xA076_1D64_78BD_642F);
    let mut unsat_seen = 0;
    for case in 0..300 {
        let nvars = 8 + (case % 5);
        let clauses = random_kcnf(&mut rng, nvars, 6 * nvars, 3);
        if oracle_sat(nvars, &clauses) {
            continue;
        }
        unsat_seen += 1;
        for (restarts, preprocess, db) in CONFIGS {
            let (got, s) = kernel(nvars, &clauses, restarts, preprocess, db, true);
            assert_eq!(
                got,
                SolveResult::Unsat,
                "case={case}: UNSAT must be stable under ({restarts}, {preprocess}, {db:?})"
            );
            let proof = s.proof().expect("proof logging was enabled");
            assert!(
                proof.empty_clause().is_some(),
                "case={case}: refutation must derive the empty clause"
            );
            assert!(
                proof.check(),
                "case={case}: proof must replay under ({restarts}, {preprocess}, {db:?})"
            );
        }
    }
    assert!(unsat_seen >= 50, "sweep too easy: only {unsat_seen} UNSAT");
}

/// Preprocessing deletes (subsumption) and replaces (self-subsuming
/// resolution) clauses at root level; neither may drop a step the
/// final refutation still resolves on. Constructed so the pass
/// provably fires: C = (a ∨ b) subsumes (a ∨ b ∨ c) and strengthens
/// (¬a ∨ b ∨ d) to (b ∨ d), and the remainder forces UNSAT.
#[test]
fn preprocessing_never_drops_a_clause_the_proof_needs() {
    let a = Lit::pos(Var::new(0));
    let b = Lit::pos(Var::new(1));
    let c = Lit::pos(Var::new(2));
    let d = Lit::pos(Var::new(3));
    let clauses: Vec<Vec<Lit>> = vec![
        vec![a, b],
        vec![a, b, c],  // subsumed by (a ∨ b)
        vec![!a, b, d], // strengthened to (b ∨ d) via resolution on a
        vec![!b, a],
        vec![!a, !b],
        vec![a, !b, c],
        // c ↔ d, ¬(c ∧ d), (c ∨ d): an unsatisfiable core untouched by
        // the simplifications above.
        vec![!c, d],
        vec![!d, c],
        vec![!c, !d],
        vec![c, d],
    ];
    assert!(!oracle_sat(4, &clauses), "construction must be UNSAT");
    for restarts in [RestartPolicy::Luby, RestartPolicy::Ema] {
        let (got, s) = kernel(4, &clauses, restarts, true, ClauseDbPolicy::Tiered, true);
        assert_eq!(got, SolveResult::Unsat);
        let proof = s.proof().expect("proof logging was enabled");
        assert!(proof.empty_clause().is_some());
        // `check` replays every chain against the *retained* steps: if
        // preprocessing had removed a step that a later chain (or the
        // final empty-clause derivation) references, the replay would
        // fail or index out of bounds.
        assert!(proof.check(), "proof with preprocessing must replay");
    }
}

/// Randomized incremental sequences: interleaved `add_clause`,
/// `solve_with_assumptions` and `import_learnts` — the exact call shape
/// of the clause-reuse layer — cross-checked against the oracle at
/// every solve. Imports come from a donor kernel solving the same
/// clause set (the soundness contract of [`Solver::import_learnts`]),
/// and the recipient's proof must keep replaying after each splice:
/// imports are axioms, so a chain resolving on one must still check.
#[test]
fn incremental_import_sequences_match_oracle() {
    let mut rng = XorShift(0x2545_F491_4F6C_DD1D);
    for case in 0..100u64 {
        let nvars = 7 + (case as usize % 5);
        let (restarts, preprocess, db) = CONFIGS[case as usize % CONFIGS.len()];
        let mut s = Solver::new();
        s.enable_proof();
        s.set_restart_policy(restarts);
        s.set_preprocess(preprocess);
        s.set_clause_db_policy(db);
        s.ensure_vars(nvars);
        let mut clauses: Vec<Vec<Lit>> = Vec::new();
        'rounds: for round in 0..6 {
            let ctx = format!("case={case} round={round}");
            let k = 2 + rng.below(3) as usize;
            let batch = random_kcnf(&mut rng, nvars, nvars / 2 + 2, k);
            for c in &batch {
                s.add_clause(c.iter().copied());
            }
            clauses.extend(batch);
            if rng.below(2) == 0 {
                // Donor over the identical clause set; its learnts are
                // implied, so splicing them in must change nothing the
                // oracle can observe.
                let (_, donor) = kernel(
                    nvars,
                    &clauses,
                    restarts,
                    false,
                    ClauseDbPolicy::Tiered,
                    false,
                );
                let export = donor.export_learnts(64, 16);
                s.import_learnts(&export);
                assert!(
                    s.proof().expect("proof enabled").check(),
                    "{ctx}: proof must replay across an interior import"
                );
            }
            let mut assumptions: Vec<Lit> = Vec::new();
            for _ in 0..rng.below(4) {
                let v = rng.below(nvars as u64) as usize;
                if !assumptions.iter().any(|l| l.var().index() == v) {
                    assumptions.push(Lit::new(Var::new(v), rng.below(2) == 0));
                }
            }
            let mut with_units = clauses.clone();
            with_units.extend(assumptions.iter().map(|&l| vec![l]));
            let want = oracle_sat(nvars, &with_units);
            match s.solve_with_assumptions(&assumptions) {
                SolveResult::Sat => {
                    assert!(want, "{ctx}: kernel SAT, oracle UNSAT");
                    for (i, c) in clauses.iter().enumerate() {
                        assert!(
                            c.iter().any(|&l| s.model_value(l) == Some(true)),
                            "{ctx}: model falsifies clause {i}"
                        );
                    }
                    for &a in &assumptions {
                        assert_eq!(
                            s.model_value(a),
                            Some(true),
                            "{ctx}: model breaks assumption"
                        );
                    }
                }
                SolveResult::Unsat => {
                    assert!(!want, "{ctx}: kernel UNSAT, oracle SAT");
                    let core = s.failed_assumptions().to_vec();
                    assert!(
                        core.iter().all(|l| assumptions.contains(l)),
                        "{ctx}: core {core:?} cites a non-assumption"
                    );
                    let mut with_core = clauses.clone();
                    with_core.extend(core.iter().map(|&l| vec![l]));
                    assert!(
                        !oracle_sat(nvars, &with_core),
                        "{ctx}: failed-assumption core is not contradictory"
                    );
                    if core.is_empty() {
                        // Root-level UNSAT: the sequence is over, and
                        // the whole refutation — imports included —
                        // must replay.
                        assert!(
                            s.proof().expect("proof enabled").check(),
                            "{ctx}: final refutation must replay"
                        );
                        break 'rounds;
                    }
                }
                SolveResult::Unknown => panic!("{ctx}: unbudgeted solve returned Unknown"),
            }
        }
    }
}

// ---------------------------------------------------------------------
// Property-based layer: free-form clause shapes (duplicate literals,
// tautologies, repeated clauses) on top of the uniform k-CNF sweeps.
// ---------------------------------------------------------------------

mod props {
    use super::*;
    use proptest::prelude::*;

    fn arb_clauses(nvars: usize) -> impl Strategy<Value = Vec<Vec<Lit>>> {
        let clause = proptest::collection::vec(
            (0..nvars, proptest::bool::ANY).prop_map(|(v, neg)| Lit::new(Var::new(v), neg)),
            1..6,
        );
        proptest::collection::vec(clause, 1..50)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Arbitrary (non-uniform) clause lists: kernel == oracle under
        /// every knob combination, models check out.
        #[test]
        fn kernel_matches_oracle_on_arbitrary_clauses(clauses in arb_clauses(9)) {
            check_instance(9, &clauses, "proptest");
        }
    }
}
