//! A CDCL SAT solver.
//!
//! This crate plays the role of the MiniSat-class engine underneath the
//! original STEP tool: conflict-driven clause learning with two-watched
//! literals, VSIDS branching with phase saving, selectable restart
//! policies ([`RestartPolicy`]: Luby, or Glucose-style LBD-EMA dynamic
//! restarts with trail-size blocking), three-tier LBD-based
//! learnt-clause database management ([`ClauseDbPolicy`]) and an
//! optional bounded root-level preprocessing pass (subsumption,
//! self-subsuming resolution, failed-literal probing) charged in
//! conflict-equivalents ([`Solver::set_preprocess`]).
//!
//! Features the rest of the workspace builds on:
//!
//! * **incremental solving under assumptions** with failed-assumption
//!   cores ([`Solver::solve_with_assumptions`],
//!   [`Solver::failed_assumptions`]) — the engine behind the paper's
//!   LJH baseline, the group-MUS bootstrap and the CEGAR 2QBF loop;
//! * **resolution proof logging** ([`Solver::enable_proof`],
//!   [`Proof`]) — the input to Craig interpolation (`step-itp`),
//!   which extracts the decomposition functions `fA`/`fB`;
//! * **learnt-clause export/import** ([`Solver::export_learnts`],
//!   [`Solver::import_learnts`], [`LearntExport`]) — a `Send + Clone`
//!   snapshot of the pinned core-tier clauses and hottest activities,
//!   replayable into another solver over the same clause set — the
//!   kernel surface behind `step-core`'s cross-output clause reuse;
//! * **budgets** — wall-clock deadlines mirroring the paper's 4-second
//!   per-QBF-call and 6000-second per-circuit limits, plus
//!   deterministic *effort* budgets ([`Solver::set_effort_budget`],
//!   [`EffortStats`]) that truncate at an exact conflict count — the
//!   machine-independent currency `step-core`'s `Work` budgets meter.
//!
//! # Example
//!
//! ```
//! use step_cnf::{Lit, Var};
//! use step_sat::{SolveResult, Solver};
//!
//! let mut s = Solver::new();
//! let x = s.new_var();
//! let y = s.new_var();
//! s.add_clause([Lit::pos(x), Lit::pos(y)]);
//! s.add_clause([Lit::neg(x)]);
//! assert_eq!(s.solve(), SolveResult::Sat);
//! assert_eq!(s.model_value(Lit::pos(y)), Some(true));
//! ```

mod heap;
mod solver;

pub mod proof;

pub use proof::{ClauseId, Proof, ProofStep};
pub use solver::{
    ClauseDbPolicy, EffortStats, LearntExport, RestartPolicy, SolveResult, Solver, SolverStats,
};

// Compile-time audit: solver instances are created and driven inside
// worker threads of the parallel circuit driver (step-core), so they
// must stay `Send + Sync` — no `Rc`, raw pointers or thread-bound
// interior mutability may creep onto the solve path.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Solver>();
    assert_send_sync::<Proof>();
    // Learnt-clause exports travel between worker threads through the
    // clause bank in step-core.
    assert_send_sync::<LearntExport>();
};

#[cfg(test)]
mod tests;
