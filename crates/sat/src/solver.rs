use std::time::Instant;

use step_cnf::{Cnf, Lit, Var};

use crate::heap::VarHeap;
use crate::proof::{ClauseId, Proof, ProofStep};

/// Result of a (possibly budgeted) solver call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SolveResult {
    /// A model was found; read it with [`Solver::model_value`].
    Sat,
    /// The formula (under the given assumptions) is unsatisfiable;
    /// read the assumption core with [`Solver::failed_assumptions`].
    Unsat,
    /// A conflict budget or deadline expired before an answer.
    Unknown,
}

/// Counters exposed for benchmarking and tuning.
#[derive(Clone, Copy, Default, Debug)]
pub struct SolverStats {
    /// Conflicts encountered.
    pub conflicts: u64,
    /// Decisions taken.
    pub decisions: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Learnt clauses currently in the database.
    pub learnts: u64,
}

/// A monotone snapshot of the *effort* a solver has expended: the
/// machine-independent counters that make solver work comparable
/// across hosts, `--jobs` values and background load (unlike wall
/// clock). Conflicts are the deterministic budgeting unit —
/// [`Solver::set_effort_budget`] truncates a call at an exact conflict
/// count, so a budgeted `Unknown` falls on the same call on every
/// machine.
///
/// Snapshots are cumulative over a solver's lifetime; diff two with
/// [`EffortStats::since`] to charge one call's work to a budget.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct EffortStats {
    /// Conflicts encountered (the budgeting currency).
    pub conflicts: u64,
    /// Decisions taken.
    pub decisions: u64,
    /// Literals propagated.
    pub propagations: u64,
}

impl EffortStats {
    /// The effort expended since an `earlier` snapshot of the same
    /// solver (saturating, so a stale snapshot can never underflow).
    pub fn since(self, earlier: EffortStats) -> EffortStats {
        EffortStats {
            conflicts: self.conflicts.saturating_sub(earlier.conflicts),
            decisions: self.decisions.saturating_sub(earlier.decisions),
            propagations: self.propagations.saturating_sub(earlier.propagations),
        }
    }
}

impl std::ops::Add for EffortStats {
    type Output = EffortStats;

    fn add(self, rhs: EffortStats) -> EffortStats {
        EffortStats {
            conflicts: self.conflicts + rhs.conflicts,
            decisions: self.decisions + rhs.decisions,
            propagations: self.propagations + rhs.propagations,
        }
    }
}

impl std::ops::AddAssign for EffortStats {
    fn add_assign(&mut self, rhs: EffortStats) {
        *self = *self + rhs;
    }
}

/// A portable snapshot of the clauses a solver considers permanently
/// valuable: its *core-tier* learnt clauses (learn-time or refreshed
/// LBD ≤ 2 — the tier [`ClauseDbPolicy::Tiered`] never deletes) plus
/// its hottest VSIDS variable activities, expressed over this solver's
/// variable indices.
///
/// Produced by [`Solver::export_learnts`] and replayed into another
/// solver with [`Solver::import_learnts`]. The snapshot is plain data
/// (`Send + Clone`), so it can cross threads — the transport for
/// cross-solver clause reuse in `step-core`'s clause bank.
///
/// The content is deterministic for a deterministic search: clause
/// literals and the clause list itself are sorted (watch maintenance
/// permutes literals in trajectory-dependent ways, so the raw order
/// would not be reproducible), and activities are normalized to the
/// donor's maximum with the variable index as tie-break.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LearntExport {
    /// Core-tier learnt clauses, each sorted; the list is sorted and
    /// deduplicated. Every clause is a logical consequence of the
    /// donor's *clause set alone* — clauses learnt under assumptions
    /// keep the relevant assumption literals (assumptions have no
    /// reason clause, so analysis cannot resolve them away), which is
    /// what makes verbatim re-import into any solver holding the same
    /// clauses sound.
    pub clauses: Vec<Vec<Lit>>,
    /// The donor's top variable activities, normalized to `(0, 1]` by
    /// the maximum, highest first.
    pub activities: Vec<(Var, f64)>,
}

impl LearntExport {
    /// Whether the snapshot carries nothing worth importing.
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty() && self.activities.is_empty()
    }

    /// Number of exported clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }
}

/// Restart scheduling policy of the CDCL search loop.
///
/// Both policies measure progress purely in **conflicts**, never wall
/// clock, so either one preserves the determinism contract of
/// [`Solver::set_effort_budget`]: a budgeted run truncates at the same
/// conflict on every machine.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum RestartPolicy {
    /// MiniSat-style static restarts on the Luby sequence with a
    /// 100-conflict unit. The historical default.
    #[default]
    Luby,
    /// Glucose-style dynamic restarts: restart when the fast
    /// exponential moving average of learnt-clause LBD rises above the
    /// slow one (search is producing unusually poor clauses), blocked
    /// while the trail is much longer than its long-run average (the
    /// solver may be closing in on a model).
    Ema,
}

impl std::fmt::Display for RestartPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RestartPolicy::Luby => "luby",
            RestartPolicy::Ema => "ema",
        })
    }
}

impl std::str::FromStr for RestartPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "luby" => Ok(RestartPolicy::Luby),
            "ema" => Ok(RestartPolicy::Ema),
            other => Err(format!("unknown restart policy `{other}` (luby|ema)")),
        }
    }
}

/// Learnt-clause database reduction policy.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum ClauseDbPolicy {
    /// Three-tier management: *core* clauses (LBD ≤ 2) are kept
    /// forever, *tier-2* clauses (LBD ≤ 6) survive while recently used
    /// and are demoted on inactivity, *local* clauses are aggressively
    /// halved at every reduction. The default.
    #[default]
    Tiered,
    /// The historical single-DB policy: sort everything by
    /// `(LBD, activity)` and delete the worse half. Kept as an
    /// ablation baseline for `benches/sat_kernels.rs`.
    SortHalf,
}

// EMA restart tuning (Glucose-lineage constants). All thresholds are
// conflict counts or pure ratios — nothing here consults a clock.
/// Minimum conflicts between dynamic restarts.
const EMA_MIN_CONFLICTS: u64 = 50;
/// Restart when `fast > EMA_MARGIN * slow`.
const EMA_MARGIN: f64 = 1.35;
/// Block a pending restart while `trail > BLOCK_MARGIN * trail_ema`.
const BLOCK_MARGIN: f64 = 1.4;
/// Smoothing window of the fast LBD average.
const EMA_FAST_WINDOW: f64 = 32.0;
/// Smoothing window of the slow LBD / trail averages.
const EMA_SLOW_WINDOW: f64 = 4096.0;

// Clause-DB reduction scheduling. The tiered policy reduces early and
// often (Glucose lineage: core clauses are exempt, so frequent
// reductions only shed the local tier); the sort-half baseline keeps
// its historical lazy geometric schedule.
/// First tiered reduction fires when the learnt DB reaches this size.
const TIERED_FIRST_REDUCE: f64 = 2000.0;
/// Linear growth of the tiered reduction threshold.
const TIERED_REDUCE_INC: f64 = 500.0;
/// First sort-half reduction threshold (historical default).
const SORT_HALF_FIRST_REDUCE: f64 = 8000.0;

// Clause tiers.
const TIER_CORE: u8 = 0;
const TIER_MID: u8 = 1;
const TIER_LOCAL: u8 = 2;
/// Learn-time LBD bound for the core tier.
const CORE_LBD: u32 = 2;
/// Learn-time LBD bound for tier 2.
const MID_LBD: u32 = 6;

// Preprocessing effort accounting: bookkeeping ticks are converted to
// conflict-equivalents so the pass charges [`EffortStats`] in the same
// deterministic currency as search.
/// Ticks (≈ literal visits) charged as one conflict-equivalent.
const PP_TICKS_PER_CONFLICT: u64 = 512;
/// Cap on the conflict-equivalents one preprocessing pass may spend.
const PP_MAX_CONFLICTS: u64 = 2000;
/// Occurrence-list bound for self-subsumption candidate scans.
const PP_STRENGTHEN_OCC_CAP: usize = 32;
/// Clauses longer than this are not used as subsumption sources.
const PP_SUBSUME_MAX_LEN: usize = 32;

const LBOOL_TRUE: u8 = 1;
const LBOOL_FALSE: u8 = 0;
const LBOOL_UNDEF: u8 = 2;

type ClauseRef = u32;
const NO_REASON: ClauseRef = u32::MAX;

#[derive(Debug)]
struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
    deleted: bool,
    activity: f64,
    lbd: u32,
    proof_id: ClauseId,
    /// [`TIER_CORE`] / [`TIER_MID`] / [`TIER_LOCAL`] (learnt only).
    tier: u8,
    /// Recent-use credit of tier-2 clauses: set when the clause takes
    /// part in conflict analysis, decremented at each reduction;
    /// hitting zero demotes the clause to the local tier.
    used: u8,
}

#[derive(Clone, Copy, Debug)]
struct Watcher {
    cref: ClauseRef,
    blocker: Lit,
}

#[derive(Clone, Copy, Debug)]
struct VarData {
    reason: ClauseRef,
    level: u32,
}

/// A CDCL SAT solver with assumptions, cores, budgets and optional
/// resolution proof logging. See the [crate docs](crate) for an
/// overview and an example.
pub struct Solver {
    clauses: Vec<Clause>,
    watches: Vec<Vec<Watcher>>,
    assigns: Vec<u8>,
    vardata: Vec<VarData>,
    polarity: Vec<bool>,
    activity: Vec<f64>,
    heap: VarHeap,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    ok: bool,
    var_inc: f64,
    cla_inc: f64,
    seen: Vec<bool>,
    model: Vec<u8>,
    conflict_core: Vec<Lit>,
    learnt_refs: Vec<ClauseRef>,
    max_learnts: f64,
    stats: SolverStats,
    conflict_budget: Option<u64>,
    deadline: Option<Instant>,
    proof: Option<Proof>,
    restart_policy: RestartPolicy,
    db_policy: ClauseDbPolicy,
    preprocess: bool,
    /// Original (non-learnt) clauses allocated so far; the
    /// preprocessing pass reruns only when this has grown by ≥ 25%
    /// since the last pass, so incremental callers that trickle in
    /// refinement clauses (the CEGAR loop) pay for one pass up front
    /// rather than one per `solve()`.
    num_originals: usize,
    /// `num_originals` already seen by preprocessing.
    pp_seen_originals: usize,
    /// Fast EMA of learnt-clause LBD (EMA restarts).
    lbd_ema_fast: f64,
    /// Slow EMA of learnt-clause LBD (EMA restarts).
    lbd_ema_slow: f64,
    /// Slow EMA of the trail size at conflicts (restart blocking).
    trail_ema: f64,
    /// Conflicts that have fed the EMAs (0 = cold averages).
    ema_samples: u64,
}

impl Default for Solver {
    fn default() -> Self {
        Solver::new()
    }
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Solver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            vardata: Vec::new(),
            polarity: Vec::new(),
            activity: Vec::new(),
            heap: VarHeap::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            ok: true,
            var_inc: 1.0,
            cla_inc: 1.0,
            seen: Vec::new(),
            model: Vec::new(),
            conflict_core: Vec::new(),
            learnt_refs: Vec::new(),
            max_learnts: TIERED_FIRST_REDUCE,
            stats: SolverStats::default(),
            conflict_budget: None,
            deadline: None,
            proof: None,
            restart_policy: RestartPolicy::default(),
            db_policy: ClauseDbPolicy::default(),
            preprocess: false,
            num_originals: 0,
            pp_seen_originals: 0,
            lbd_ema_fast: 0.0,
            lbd_ema_slow: 0.0,
            trail_ema: 0.0,
            ema_samples: 0,
        }
    }

    /// Selects the restart policy for subsequent solve calls (default
    /// [`RestartPolicy::Luby`]). Both policies are deterministic in
    /// conflicts; they merely walk different search trajectories.
    pub fn set_restart_policy(&mut self, policy: RestartPolicy) {
        self.restart_policy = policy;
    }

    /// The active restart policy.
    pub fn restart_policy(&self) -> RestartPolicy {
        self.restart_policy
    }

    /// Selects the learnt-clause database reduction policy (default
    /// [`ClauseDbPolicy::Tiered`]) and resets the reduction schedule to
    /// the policy's first threshold, so switching policies mid-life
    /// restarts the schedule rather than inheriting the other policy's
    /// grown one.
    pub fn set_clause_db_policy(&mut self, policy: ClauseDbPolicy) {
        self.db_policy = policy;
        self.max_learnts = match policy {
            ClauseDbPolicy::Tiered => TIERED_FIRST_REDUCE,
            ClauseDbPolicy::SortHalf => SORT_HALF_FIRST_REDUCE,
        };
    }

    /// Enables the bounded root-level preprocessing pass (subsumption,
    /// self-subsuming resolution, failed-literal probing) at the entry
    /// of each solve call that sees new original clauses. Off by
    /// default: incremental callers that re-solve a slowly growing
    /// formula many times — the CEGAR loop above all — usually lose
    /// more to re-preprocessing than they gain.
    ///
    /// The pass charges its work to [`EffortStats`] as
    /// conflict-equivalents, so effort budgets stay exact and
    /// machine-independent.
    pub fn set_preprocess(&mut self, on: bool) {
        self.preprocess = on;
    }

    /// Turns on resolution proof logging (must be called before any
    /// clause is added). Disables learnt-clause minimization and
    /// level-0 clause strengthening so recorded chains stay exact.
    ///
    /// # Panics
    ///
    /// Panics if clauses have already been added.
    pub fn enable_proof(&mut self) {
        assert!(
            self.clauses.is_empty(),
            "enable_proof must be called before adding clauses"
        );
        self.proof = Some(Proof::new());
    }

    /// The logged proof, if proof logging is enabled.
    pub fn proof(&self) -> Option<&Proof> {
        self.proof.as_ref()
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::new(self.assigns.len());
        self.assigns.push(LBOOL_UNDEF);
        self.vardata.push(VarData {
            reason: NO_REASON,
            level: 0,
        });
        self.polarity.push(false);
        self.activity.push(0.0);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.heap.grow(self.assigns.len());
        self.heap.insert(v, &self.activity);
        v
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Ensures variables `0..n` exist.
    pub fn ensure_vars(&mut self, n: usize) {
        while self.num_vars() < n {
            self.new_var();
        }
    }

    /// Whether the clause set is still possibly satisfiable (false once
    /// a top-level conflict has been derived).
    pub fn is_ok(&self) -> bool {
        self.ok
    }

    /// Solver statistics.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Test-only snapshot of the live learnt clauses as
    /// `(clause ref, lbd)` pairs, used to pin the Glucose invariant
    /// that a clause's LBD only ever decreases.
    #[cfg(test)]
    pub(crate) fn learnt_lbds(&self) -> Vec<(u32, u32)> {
        self.learnt_refs
            .iter()
            .filter(|&&r| !self.clauses[r as usize].deleted)
            .map(|&r| (r, self.clauses[r as usize].lbd))
            .collect()
    }

    /// A monotone snapshot of the effort expended so far (conflicts,
    /// decisions, propagations). Snapshots only grow across solve
    /// calls; diff two with [`EffortStats::since`] to account one
    /// call's work.
    pub fn effort(&self) -> EffortStats {
        EffortStats {
            conflicts: self.stats.conflicts,
            decisions: self.stats.decisions,
            propagations: self.stats.propagations,
        }
    }

    /// Limits the *next* solve call to `conflicts` conflicts
    /// (`None` = unlimited); an exhausted call returns
    /// [`SolveResult::Unknown`] at that exact count. Unlike a
    /// wall-clock deadline, the cut-off point is machine-independent:
    /// it is the deterministic budgeting surface underneath
    /// `step-core`'s `Work` budgets. The budget applies per call (it
    /// persists until replaced, resetting its baseline each call).
    pub fn set_effort_budget(&mut self, conflicts: Option<u64>) {
        self.conflict_budget = conflicts;
    }

    /// Alias of [`Solver::set_effort_budget`], kept for callers of the
    /// original conflict-budget name.
    pub fn set_conflict_budget(&mut self, conflicts: Option<u64>) {
        self.set_effort_budget(conflicts);
    }

    /// Sets a wall-clock deadline for subsequent solve calls
    /// (`None` = no deadline).
    pub fn set_deadline(&mut self, deadline: Option<Instant>) {
        self.deadline = deadline;
    }

    fn value_lit(&self, l: Lit) -> u8 {
        let a = self.assigns[l.var().index()];
        if a == LBOOL_UNDEF {
            LBOOL_UNDEF
        } else {
            a ^ l.is_neg() as u8
        }
    }

    fn level(&self, v: Var) -> u32 {
        self.vardata[v.index()].level
    }

    fn reason(&self, v: Var) -> ClauseRef {
        self.vardata[v.index()].reason
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    // ------------------------------------------------------------------
    // clause management
    // ------------------------------------------------------------------

    /// Adds a clause. Returns the proof [`ClauseId`] when proof logging
    /// is on (also for clauses that are simplified away), else `None`.
    ///
    /// Once the solver is in an unsatisfiable top-level state
    /// ([`Solver::is_ok`] is `false`), further clauses are recorded in
    /// the proof but otherwise ignored.
    ///
    /// # Panics
    ///
    /// Panics if called between `solve` calls at a non-zero decision
    /// level (cannot happen through the public API) or if a literal
    /// references an unallocated variable.
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) -> Option<ClauseId> {
        assert_eq!(self.decision_level(), 0, "clauses must be added at level 0");
        let mut c: Vec<Lit> = lits.into_iter().collect();
        for l in &c {
            assert!(
                l.var().index() < self.num_vars(),
                "unallocated variable in clause"
            );
        }
        c.sort_unstable();
        c.dedup();
        let tautology = c.windows(2).any(|w| w[0].var() == w[1].var());
        let pid = self
            .proof
            .as_mut()
            .map(|p| p.push(ProofStep::Original { lits: c.clone() }));
        if !self.ok || tautology {
            return pid;
        }
        if self.proof.is_none() {
            // Strengthen with the top-level assignment.
            if c.iter().any(|&l| self.value_lit(l) == LBOOL_TRUE) {
                return pid;
            }
            c.retain(|&l| self.value_lit(l) != LBOOL_FALSE);
        }
        if c.is_empty() {
            // Either the clause was empty as given, or (proof off) all
            // literals were false at level 0. In proof mode clauses are
            // never strengthened, so an empty `c` is an empty input
            // clause — the proof already marks it as the refutation.
            self.ok = false;
            return pid;
        }
        // Order literals: non-false first so watches are sound.
        c.sort_by_key(|&l| self.value_lit(l) == LBOOL_FALSE);
        let n_watchable = c
            .iter()
            .filter(|&&l| self.value_lit(l) != LBOOL_FALSE)
            .count();
        let cref = self.alloc_clause(c, false, pid.unwrap_or(0));
        match n_watchable {
            0 => {
                // Conflict at level 0.
                self.record_level0_refutation_from(cref);
                self.ok = false;
            }
            1 => {
                let unit = self.clauses[cref as usize].lits[0];
                if self.clauses[cref as usize].lits.len() >= 2 {
                    self.attach(cref);
                }
                if self.value_lit(unit) == LBOOL_UNDEF {
                    self.enqueue(unit, cref);
                    if let Some(confl) = self.propagate() {
                        self.record_level0_refutation_from(confl);
                        self.ok = false;
                    }
                }
            }
            _ => {
                self.attach(cref);
            }
        }
        pid
    }

    /// Adds every clause of a [`Cnf`] (allocating variables as needed).
    pub fn add_cnf(&mut self, cnf: &Cnf) {
        self.ensure_vars(cnf.num_vars());
        for clause in cnf.clauses() {
            self.add_clause(clause.iter().copied());
        }
    }

    fn alloc_clause(&mut self, lits: Vec<Lit>, learnt: bool, proof_id: ClauseId) -> ClauseRef {
        let cref = self.clauses.len() as ClauseRef;
        self.clauses.push(Clause {
            lits,
            learnt,
            deleted: false,
            activity: 0.0,
            lbd: 0,
            proof_id,
            tier: TIER_LOCAL,
            used: 0,
        });
        if learnt {
            self.learnt_refs.push(cref);
            self.stats.learnts += 1;
        } else {
            self.num_originals += 1;
        }
        cref
    }

    /// The tier a learnt clause of the given LBD starts in.
    fn tier_for_lbd(lbd: u32) -> u8 {
        if lbd <= CORE_LBD {
            TIER_CORE
        } else if lbd <= MID_LBD {
            TIER_MID
        } else {
            TIER_LOCAL
        }
    }

    fn attach(&mut self, cref: ClauseRef) {
        let (w0, w1) = {
            let c = &self.clauses[cref as usize];
            debug_assert!(c.lits.len() >= 2);
            (c.lits[0], c.lits[1])
        };
        self.watches[(!w0).code() as usize].push(Watcher { cref, blocker: w1 });
        self.watches[(!w1).code() as usize].push(Watcher { cref, blocker: w0 });
    }

    // ------------------------------------------------------------------
    // trail
    // ------------------------------------------------------------------

    fn enqueue(&mut self, l: Lit, reason: ClauseRef) {
        debug_assert_eq!(self.value_lit(l), LBOOL_UNDEF);
        self.assigns[l.var().index()] = (!l.is_neg()) as u8;
        self.vardata[l.var().index()] = VarData {
            reason,
            level: self.decision_level(),
        };
        self.trail.push(l);
    }

    fn backtrack(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let lim = self.trail_lim[level as usize];
        for i in (lim..self.trail.len()).rev() {
            let l = self.trail[i];
            let v = l.var();
            self.assigns[v.index()] = LBOOL_UNDEF;
            self.polarity[v.index()] = !l.is_neg();
            self.heap.insert(v, &self.activity);
        }
        self.trail.truncate(lim);
        self.trail_lim.truncate(level as usize);
        self.qhead = lim;
    }

    // ------------------------------------------------------------------
    // propagation
    // ------------------------------------------------------------------

    fn propagate(&mut self) -> Option<ClauseRef> {
        let mut conflict = None;
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let ws = std::mem::take(&mut self.watches[p.code() as usize]);
            let mut kept = Vec::with_capacity(ws.len());
            let mut i = 0;
            'watchers: while i < ws.len() {
                let w = ws[i];
                i += 1;
                if self.clauses[w.cref as usize].deleted {
                    continue;
                }
                if self.value_lit(w.blocker) == LBOOL_TRUE {
                    kept.push(w);
                    continue;
                }
                let false_lit = !p;
                // Normalize: watched false literal at position 1.
                {
                    let c = &mut self.clauses[w.cref as usize];
                    if c.lits[0] == false_lit {
                        c.lits.swap(0, 1);
                    }
                    debug_assert_eq!(c.lits[1], false_lit);
                }
                let first = self.clauses[w.cref as usize].lits[0];
                let w = Watcher {
                    cref: w.cref,
                    blocker: first,
                };
                if self.value_lit(first) == LBOOL_TRUE {
                    kept.push(w);
                    continue;
                }
                // Find a replacement watch.
                let len = self.clauses[w.cref as usize].lits.len();
                for k in 2..len {
                    let lk = self.clauses[w.cref as usize].lits[k];
                    if self.value_lit(lk) != LBOOL_FALSE {
                        self.clauses[w.cref as usize].lits.swap(1, k);
                        self.watches[(!lk).code() as usize].push(w);
                        continue 'watchers;
                    }
                }
                // Unit or conflict.
                kept.push(w);
                if self.value_lit(first) == LBOOL_FALSE {
                    conflict = Some(w.cref);
                    self.qhead = self.trail.len();
                    kept.extend_from_slice(&ws[i..]);
                    break;
                } else {
                    self.enqueue(first, w.cref);
                }
            }
            self.watches[p.code() as usize] = kept;
            if conflict.is_some() {
                break;
            }
        }
        conflict
    }

    // ------------------------------------------------------------------
    // conflict analysis
    // ------------------------------------------------------------------

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.heap.decrease_key(v, &self.activity);
    }

    fn bump_clause(&mut self, cref: ClauseRef) {
        let c = &mut self.clauses[cref as usize];
        c.activity += self.cla_inc;
        if c.activity > 1e20 {
            for &lr in &self.learnt_refs {
                self.clauses[lr as usize].activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    /// First-UIP analysis. Returns (learnt clause with asserting literal
    /// first, backtrack level, proof chain pieces).
    #[allow(clippy::type_complexity)]
    fn analyze(
        &mut self,
        confl: ClauseRef,
    ) -> (Vec<Lit>, u32, Option<(ClauseId, Vec<(Var, ClauseId)>)>) {
        let mut learnt: Vec<Lit> = vec![Lit::pos(Var::new(0))]; // placeholder slot 0
        let mut counter = 0u32;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut cref = confl;
        let proof_on = self.proof.is_some();
        let chain_start = self.clauses[confl as usize].proof_id;
        let mut resolutions: Vec<(Var, ClauseId)> = Vec::new();
        let mut zero_vars: Vec<Var> = Vec::new();
        let mut zero_seen = vec![false; if proof_on { self.num_vars() } else { 0 }];
        let cur_level = self.decision_level();

        loop {
            let lits = self.clauses[cref as usize].lits.clone();
            if self.clauses[cref as usize].learnt {
                self.bump_clause(cref);
                // Glucose-style LBD update on use: every literal of a
                // conflict-side clause is assigned here, so its block
                // count is well-defined — refresh it, keeping the
                // stored value monotone non-increasing (the original
                // learn-time LBD goes stale once later conflicts and
                // minimization reshape the level structure).
                let fresh = self.compute_lbd(&lits);
                let c = &mut self.clauses[cref as usize];
                if fresh < c.lbd {
                    c.lbd = fresh;
                    let promoted = Self::tier_for_lbd(fresh);
                    if promoted < c.tier {
                        c.tier = promoted;
                    }
                }
                if c.tier == TIER_MID {
                    c.used = 2;
                }
            }
            for &q in &lits {
                // Skip the pivot literal of this resolution step.
                if let Some(pl) = p {
                    if q.var() == pl.var() {
                        continue;
                    }
                }
                let v = q.var();
                if self.seen[v.index()] {
                    continue;
                }
                if self.level(v) > 0 {
                    self.seen[v.index()] = true;
                    self.bump_var(v);
                    if self.level(v) >= cur_level {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                } else if proof_on && !zero_seen[v.index()] {
                    zero_seen[v.index()] = true;
                    zero_vars.push(v);
                }
            }
            // Find next literal to resolve on.
            loop {
                index -= 1;
                let l = self.trail[index];
                if self.seen[l.var().index()] {
                    p = Some(l);
                    break;
                }
            }
            let pv = p.expect("found pivot").var();
            self.seen[pv.index()] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = !p.expect("asserting literal");
                break;
            }
            cref = self.reason(pv);
            debug_assert_ne!(cref, NO_REASON, "non-decision must have a reason");
            if proof_on {
                resolutions.push((pv, self.clauses[cref as usize].proof_id));
            }
        }

        // Learnt-clause minimization (proof off only: removing a literal
        // is an implicit resolution we would otherwise have to log).
        let all_vars: Vec<Var> = learnt.iter().map(|l| l.var()).collect();
        if !proof_on {
            let keep: Vec<bool> = learnt
                .iter()
                .enumerate()
                .map(|(i, &l)| i == 0 || !self.literal_redundant(l))
                .collect();
            let mut k = 0;
            learnt.retain(|_| {
                k += 1;
                keep[k - 1]
            });
        }

        // Clear `seen` for every marked literal (including minimized-away
        // ones, which must not pollute the next analysis).
        for v in all_vars {
            self.seen[v.index()] = false;
        }

        // Backtrack level = highest level among learnt[1..].
        let mut bt = 0;
        if learnt.len() > 1 {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level(learnt[i].var()) > self.level(learnt[max_i].var()) {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            bt = self.level(learnt[1].var());
        }

        let chain = if proof_on {
            // Resolve away the level-0 literals dropped above.
            let extra = self.level0_resolutions(&mut zero_seen, zero_vars);
            let mut res = resolutions;
            res.extend(extra);
            Some((chain_start, res))
        } else {
            None
        };
        (learnt, bt, chain)
    }

    /// Cheap self-subsumption: `l` is redundant if its reason's other
    /// literals are all already in the learnt clause (marked seen) or at
    /// level 0.
    fn literal_redundant(&self, l: Lit) -> bool {
        let r = self.reason(l.var());
        if r == NO_REASON {
            return false;
        }
        self.clauses[r as usize]
            .lits
            .iter()
            .all(|&q| q.var() == l.var() || self.seen[q.var().index()] || self.level(q.var()) == 0)
    }

    /// Appends resolutions eliminating all marked level-0 variables, in
    /// reverse trail order. `zero_seen` marks the variables; reasons may
    /// introduce further level-0 variables, which are marked too.
    fn level0_resolutions(
        &self,
        zero_seen: &mut [bool],
        mut worklist: Vec<Var>,
    ) -> Vec<(Var, ClauseId)> {
        let mut res = Vec::new();
        if worklist.is_empty() {
            return res;
        }
        let zero_end = self.trail_lim.first().copied().unwrap_or(self.trail.len());
        for i in (0..zero_end).rev() {
            let v = self.trail[i].var();
            if !zero_seen[v.index()] {
                continue;
            }
            let r = self.reason(v);
            debug_assert_ne!(r, NO_REASON, "level-0 assignments always have reasons");
            res.push((v, self.clauses[r as usize].proof_id));
            for &q in &self.clauses[r as usize].lits {
                if q.var() != v && !zero_seen[q.var().index()] {
                    debug_assert_eq!(self.level(q.var()), 0);
                    zero_seen[q.var().index()] = true;
                    worklist.push(q.var());
                }
            }
        }
        res
    }

    /// Records the derivation of the empty clause from a conflict at
    /// decision level 0.
    fn record_level0_refutation_from(&mut self, confl: ClauseRef) {
        if self.proof.is_none() {
            return;
        }
        let start = self.clauses[confl as usize].proof_id;
        let mut zero_seen = vec![false; self.num_vars()];
        let mut worklist = Vec::new();
        for &q in &self.clauses[confl as usize].lits {
            if !zero_seen[q.var().index()] {
                zero_seen[q.var().index()] = true;
                worklist.push(q.var());
            }
        }
        let res = self.level0_resolutions(&mut zero_seen, worklist);
        if let Some(p) = self.proof.as_mut() {
            p.push(ProofStep::Chain {
                lits: Vec::new(),
                start,
                resolutions: res,
            });
        }
    }

    /// The subset of the assumptions responsible for `p` being false
    /// (MiniSat's `analyzeFinal`): stored into `conflict_core` as the
    /// assumption literals themselves.
    fn analyze_final(&mut self, p: Lit) {
        self.conflict_core.clear();
        self.conflict_core.push(p);
        if self.decision_level() == 0 {
            return;
        }
        self.seen[p.var().index()] = true;
        for i in (self.trail_lim[0]..self.trail.len()).rev() {
            let v = self.trail[i].var();
            if !self.seen[v.index()] {
                continue;
            }
            let r = self.reason(v);
            if r == NO_REASON {
                // An assumption decision: trail literal is the
                // assumption itself.
                self.conflict_core.push(self.trail[i]);
            } else {
                for &q in &self.clauses[r as usize].lits {
                    if q.var() != v && self.level(q.var()) > 0 {
                        self.seen[q.var().index()] = true;
                    }
                }
            }
            self.seen[v.index()] = false;
        }
        self.seen[p.var().index()] = false;
    }

    // ------------------------------------------------------------------
    // search
    // ------------------------------------------------------------------

    fn pick_branch_var(&mut self) -> Option<Var> {
        while let Some(v) = self.heap.pop(&self.activity) {
            if self.assigns[v.index()] == LBOOL_UNDEF {
                return Some(v);
            }
        }
        None
    }

    /// Whether `r` is the reason of a currently true first literal
    /// (and must therefore survive any reduction).
    fn locked(&self, r: ClauseRef) -> bool {
        let l0 = self.clauses[r as usize].lits[0];
        self.value_lit(l0) == LBOOL_TRUE && self.reason(l0.var()) == r
    }

    fn reduce_db(&mut self) {
        match self.db_policy {
            ClauseDbPolicy::Tiered => self.reduce_db_tiered(),
            ClauseDbPolicy::SortHalf => self.reduce_db_sort_half(),
        }
    }

    /// Three-tier reduction: core clauses are untouchable, tier-2
    /// clauses lose one use credit (demoting to local once it runs
    /// out), and the worse half of the local tier is deleted, ordered
    /// by `(LBD, activity)` with the clause index as a deterministic
    /// tie-break.
    fn reduce_db_tiered(&mut self) {
        self.learnt_refs
            .retain(|&r| !self.clauses[r as usize].deleted);
        let mut local: Vec<ClauseRef> = Vec::new();
        for &r in &self.learnt_refs {
            let c = &mut self.clauses[r as usize];
            match c.tier {
                TIER_MID => {
                    if c.used > 0 {
                        c.used -= 1;
                    } else {
                        c.tier = TIER_LOCAL;
                        local.push(r);
                    }
                }
                TIER_LOCAL => local.push(r),
                _ => {}
            }
        }
        local.sort_by(|&a, &b| {
            let (ca, cb) = (&self.clauses[a as usize], &self.clauses[b as usize]);
            ca.lbd
                .cmp(&cb.lbd)
                .then(
                    cb.activity
                        .partial_cmp(&ca.activity)
                        .unwrap_or(std::cmp::Ordering::Equal),
                )
                .then(a.cmp(&b))
        });
        let keep_from = local.len() / 2;
        for &r in &local[keep_from..] {
            if self.locked(r) {
                continue;
            }
            let c = &mut self.clauses[r as usize];
            if c.lits.len() > 2 {
                c.deleted = true;
                self.stats.learnts -= 1;
            }
        }
        self.learnt_refs
            .retain(|&r| !self.clauses[r as usize].deleted);
    }

    /// The historical sort-half reduction (ablation baseline).
    fn reduce_db_sort_half(&mut self) {
        let act = |c: &Clause| c.activity;
        self.learnt_refs
            .retain(|&r| !self.clauses[r as usize].deleted);
        let mut refs = self.learnt_refs.clone();
        refs.sort_by(|&a, &b| {
            let (ca, cb) = (&self.clauses[a as usize], &self.clauses[b as usize]);
            ca.lbd.cmp(&cb.lbd).then(
                act(cb)
                    .partial_cmp(&act(ca))
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
        });
        // Delete the worse half, keeping locked clauses and LBD <= 2.
        let keep_from = refs.len() / 2;
        for &r in &refs[keep_from..] {
            let locked = self.locked(r);
            let c = &mut self.clauses[r as usize];
            if !locked && c.lbd > 2 && c.lits.len() > 2 {
                c.deleted = true;
                self.stats.learnts -= 1;
            }
        }
        self.learnt_refs
            .retain(|&r| !self.clauses[r as usize].deleted);
    }

    fn luby(mut x: u64) -> u64 {
        // Luby sequence: 1 1 2 1 1 2 4 ...
        let mut size = 1u64;
        let mut seq = 0u64;
        while size < x + 1 {
            seq += 1;
            size = 2 * size + 1;
        }
        while size - 1 != x {
            size = (size - 1) / 2;
            seq -= 1;
            x %= size;
        }
        1u64 << seq
    }

    fn out_of_budget(&self, conflicts_at_start: u64) -> bool {
        if let Some(b) = self.conflict_budget {
            if self.stats.conflicts - conflicts_at_start >= b {
                return true;
            }
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return true;
            }
        }
        false
    }

    /// Solves the current formula without assumptions.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with_assumptions(&[])
    }

    /// Solves under the given assumption literals.
    ///
    /// On [`SolveResult::Unsat`], [`Solver::failed_assumptions`] holds a
    /// subset of `assumptions` that is already contradictory with the
    /// clauses (the *core*; empty when the clauses alone are UNSAT).
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.conflict_core.clear();
        if !self.ok {
            return SolveResult::Unsat;
        }
        self.backtrack(0);
        if let Some(confl) = self.propagate() {
            self.record_level0_refutation_from(confl);
            self.ok = false;
            return SolveResult::Unsat;
        }
        let conflicts_at_start = self.stats.conflicts;
        if self.preprocess
            && self.num_originals > self.pp_seen_originals + self.pp_seen_originals / 4
        {
            if let Some(early) = self.run_preprocess(conflicts_at_start) {
                return early;
            }
            self.pp_seen_originals = self.num_originals;
        }
        let mut restart_num = 0u64;
        let mut restart_budget = 100 * Self::luby(restart_num);
        let mut conflicts_this_restart = 0u64;

        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_this_restart += 1;
                if self.decision_level() == 0 {
                    self.record_level0_refutation_from(confl);
                    self.ok = false;
                    return SolveResult::Unsat;
                }
                let (learnt, bt, chain) = self.analyze(confl);
                self.backtrack(bt);
                let pid = match (self.proof.as_mut(), chain) {
                    (Some(p), Some((start, resolutions))) => p.push(ProofStep::Chain {
                        lits: learnt.clone(),
                        start,
                        resolutions,
                    }),
                    _ => 0,
                };
                let lbd = self.compute_lbd(&learnt);
                let asserting = learnt[0];
                let len = learnt.len();
                let cref = self.alloc_clause(learnt, true, pid);
                {
                    let c = &mut self.clauses[cref as usize];
                    c.lbd = lbd;
                    c.tier = Self::tier_for_lbd(lbd);
                    c.used = 2;
                }
                if len >= 2 {
                    self.attach(cref);
                }
                self.enqueue(asserting, cref);
                self.var_inc /= 0.95;
                self.cla_inc /= 0.999;
                if self.restart_policy == RestartPolicy::Ema {
                    // Feed the restart heuristics. The trail length is
                    // sampled *after* backtracking to the assertion
                    // level, the moment comparable across conflicts.
                    let (l, t) = (lbd as f64, self.trail.len() as f64);
                    if self.ema_samples == 0 {
                        self.lbd_ema_fast = l;
                        self.lbd_ema_slow = l;
                        self.trail_ema = t;
                    } else {
                        self.lbd_ema_fast += (l - self.lbd_ema_fast) / EMA_FAST_WINDOW;
                        self.lbd_ema_slow += (l - self.lbd_ema_slow) / EMA_SLOW_WINDOW;
                        self.trail_ema += (t - self.trail_ema) / EMA_SLOW_WINDOW;
                    }
                    self.ema_samples += 1;
                    // Blocking: an unusually long trail suggests the
                    // search is closing in on a model — postpone any
                    // pending restart rather than throw it away.
                    if conflicts_this_restart >= EMA_MIN_CONFLICTS
                        && t > BLOCK_MARGIN * self.trail_ema
                    {
                        conflicts_this_restart = 0;
                    }
                }
                if self.out_of_budget(conflicts_at_start) {
                    self.backtrack(0);
                    return SolveResult::Unknown;
                }
                if self.stats.learnts as f64 > self.max_learnts {
                    self.reduce_db();
                    match self.db_policy {
                        ClauseDbPolicy::Tiered => self.max_learnts += TIERED_REDUCE_INC,
                        ClauseDbPolicy::SortHalf => self.max_learnts *= 1.3,
                    }
                }
            } else {
                let restart_now = match self.restart_policy {
                    RestartPolicy::Luby => conflicts_this_restart >= restart_budget,
                    RestartPolicy::Ema => {
                        conflicts_this_restart >= EMA_MIN_CONFLICTS
                            && self.lbd_ema_fast > EMA_MARGIN * self.lbd_ema_slow
                    }
                };
                if restart_now && self.decision_level() > 0 {
                    restart_num += 1;
                    restart_budget = 100 * Self::luby(restart_num);
                    conflicts_this_restart = 0;
                    self.stats.restarts += 1;
                    if self.restart_policy == RestartPolicy::Ema {
                        // Discharge the trigger so the next restart
                        // needs fresh evidence of stalling.
                        self.lbd_ema_fast = self.lbd_ema_slow;
                    }
                    self.backtrack(0);
                    continue;
                }
                // Establish assumptions as pseudo-decisions.
                let dl = self.decision_level() as usize;
                if dl < assumptions.len() {
                    let a = assumptions[dl];
                    match self.value_lit(a) {
                        LBOOL_TRUE => {
                            // Already implied: open an empty level.
                            self.trail_lim.push(self.trail.len());
                        }
                        LBOOL_FALSE => {
                            self.analyze_final(a);
                            // Unwind before returning: leaving the
                            // assumption levels on the trail would make
                            // a later `add_clause`/`import_learnts`
                            // trip the level-0 assertion, and their
                            // stale propagations must not leak into the
                            // next call's state.
                            self.backtrack(0);
                            return SolveResult::Unsat;
                        }
                        _ => {
                            self.stats.decisions += 1;
                            self.trail_lim.push(self.trail.len());
                            self.enqueue(a, NO_REASON);
                        }
                    }
                    continue;
                }
                match self.pick_branch_var() {
                    None => {
                        // Full model.
                        self.model = self.assigns.clone();
                        self.backtrack(0);
                        return SolveResult::Sat;
                    }
                    Some(v) => {
                        self.stats.decisions += 1;
                        if self.out_of_budget(conflicts_at_start) {
                            self.backtrack(0);
                            return SolveResult::Unknown;
                        }
                        let l = Lit::new(v, !self.polarity[v.index()]);
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(l, NO_REASON);
                    }
                }
            }
        }
    }

    fn compute_lbd(&self, lits: &[Lit]) -> u32 {
        let mut levels: Vec<u32> = lits.iter().map(|l| self.level(l.var())).collect();
        levels.sort_unstable();
        levels.dedup();
        levels.len() as u32
    }

    // ------------------------------------------------------------------
    // bounded root-level preprocessing
    // ------------------------------------------------------------------

    /// Charges `amount` bookkeeping ticks to the preprocessing pass,
    /// converting whole [`PP_TICKS_PER_CONFLICT`] blocks into
    /// conflict-equivalents on [`SolverStats::conflicts`]. Returns
    /// `true` once the pass must stop: either its own cap
    /// ([`PP_MAX_CONFLICTS`]) is reached or — the caller then ends the
    /// whole solve — the call's effort budget ran out.
    fn pp_charge(&mut self, ticks: &mut u64, amount: u64, conflicts_at_start: u64) -> bool {
        *ticks += amount;
        while *ticks >= PP_TICKS_PER_CONFLICT {
            *ticks -= PP_TICKS_PER_CONFLICT;
            self.stats.conflicts += 1;
        }
        self.out_of_budget(conflicts_at_start)
            || self.stats.conflicts - conflicts_at_start >= PP_MAX_CONFLICTS
    }

    /// The bounded root-level preprocessing pass: forward subsumption,
    /// self-subsuming resolution and failed-literal probing, run at
    /// decision level 0 before search when [`Solver::set_preprocess`]
    /// is on and new original clauses have arrived.
    ///
    /// Every simplification is proof-safe: subsumed clauses are only
    /// *deleted* (proof steps persist, so chains referring to them
    /// stay checkable), strengthened clauses are re-derived as fresh
    /// clauses with a logged resolution chain, and failed literals are
    /// learnt through the regular conflict-analysis path. Returns
    /// `Some(result)` when preprocessing itself decided the call
    /// (refutation found, or the effort budget expired mid-pass).
    fn run_preprocess(&mut self, conflicts_at_start: u64) -> Option<SolveResult> {
        debug_assert_eq!(self.decision_level(), 0);
        let mut ticks = 0u64;
        if let Some(r) = self.pp_subsume(&mut ticks, conflicts_at_start) {
            return Some(r);
        }
        if self.out_of_budget(conflicts_at_start) {
            return Some(SolveResult::Unknown);
        }
        if let Some(r) = self.pp_probe(&mut ticks, conflicts_at_start) {
            return Some(r);
        }
        if self.out_of_budget(conflicts_at_start) {
            return Some(SolveResult::Unknown);
        }
        None
    }

    /// Forward subsumption and self-subsuming resolution over the
    /// current clause database (root-satisfied and deleted clauses are
    /// skipped; locked clauses are never touched because a level-0
    /// reason clause is always root-satisfied).
    fn pp_subsume(&mut self, ticks: &mut u64, conflicts_at_start: u64) -> Option<SolveResult> {
        let n_clauses = self.clauses.len();
        // Occurrence lists over the snapshot; clauses created by
        // strengthening below are appended after `n_clauses` and are
        // deliberately not re-queued (one bounded pass, not a fixpoint).
        let mut occ: Vec<Vec<ClauseRef>> = vec![Vec::new(); 2 * self.num_vars()];
        let mut total_lits = 0u64;
        for (i, c) in self.clauses.iter().enumerate() {
            if c.deleted || c.lits.len() < 2 {
                continue;
            }
            total_lits += c.lits.len() as u64;
            for &l in &c.lits {
                occ[l.code() as usize].push(i as ClauseRef);
            }
        }
        if self.pp_charge(ticks, total_lits, conflicts_at_start) {
            return self.pp_stop(conflicts_at_start);
        }
        for ci in 0..n_clauses {
            let c_lits = {
                let c = &self.clauses[ci];
                if c.deleted || c.lits.len() < 2 || c.lits.len() > PP_SUBSUME_MAX_LEN {
                    continue;
                }
                if c.lits.iter().any(|&l| self.value_lit(l) == LBOOL_TRUE) {
                    continue; // root-satisfied
                }
                c.lits.clone()
            };
            // Subsumption targets: clauses sharing C's rarest literal.
            let lmin = *c_lits
                .iter()
                .min_by_key(|l| occ[l.code() as usize].len())
                .expect("non-empty clause");
            let mut targets: Vec<ClauseRef> = occ[lmin.code() as usize].clone();
            // Strengthening targets: clauses containing a negation of
            // one of C's literals (bounded scan).
            for &l in &c_lits {
                let neg = &occ[(!l).code() as usize];
                if neg.len() <= PP_STRENGTHEN_OCC_CAP {
                    targets.extend_from_slice(neg);
                }
            }
            for dj in targets {
                if dj as usize == ci {
                    continue;
                }
                let cost = {
                    let d = &self.clauses[dj as usize];
                    if d.deleted
                        || d.lits.len() < c_lits.len()
                        || d.lits.iter().any(|&l| self.value_lit(l) == LBOOL_TRUE)
                    {
                        continue;
                    }
                    (c_lits.len() + d.lits.len()) as u64
                };
                if self.pp_charge(ticks, cost, conflicts_at_start) {
                    return self.pp_stop(conflicts_at_start);
                }
                // C ⊆ D (subsumes) or C ⊆ D with exactly one literal
                // negated (self-subsuming resolution on that literal).
                let mut flip: Option<Lit> = None;
                let mut matched = true;
                for &l in &c_lits {
                    if self.clauses[dj as usize].lits.contains(&l) {
                        continue;
                    }
                    if self.clauses[dj as usize].lits.contains(&!l) && flip.is_none() {
                        flip = Some(l);
                    } else {
                        matched = false;
                        break;
                    }
                }
                if !matched {
                    continue;
                }
                match flip {
                    None => {
                        // D is subsumed by C: delete it.
                        let d = &mut self.clauses[dj as usize];
                        d.deleted = true;
                        if d.learnt {
                            self.stats.learnts -= 1;
                        }
                    }
                    Some(l) => {
                        if let Some(r) = self.pp_strengthen(ci as ClauseRef, dj, l) {
                            return Some(r);
                        }
                    }
                }
            }
        }
        None
    }

    /// The `Unknown`/`Unsat` result to surface when preprocessing hits
    /// a budget wall (`None` when only the pass cap was reached — the
    /// solve continues with search).
    fn pp_stop(&mut self, conflicts_at_start: u64) -> Option<SolveResult> {
        if self.out_of_budget(conflicts_at_start) {
            self.backtrack(0);
            Some(SolveResult::Unknown)
        } else {
            None
        }
    }

    /// Self-subsuming resolution: resolving `C` (containing `l`) with
    /// `D` (containing `¬l`) yields `D \ {¬l}`, which replaces `D` as
    /// a fresh clause with a logged chain. May propagate and thus
    /// refute the formula outright.
    fn pp_strengthen(&mut self, ci: ClauseRef, dj: ClauseRef, l: Lit) -> Option<SolveResult> {
        let mut lits: Vec<Lit> = self.clauses[dj as usize]
            .lits
            .iter()
            .copied()
            .filter(|&q| q != !l)
            .collect();
        debug_assert!(!lits.is_empty());
        let pid = {
            let start = self.clauses[dj as usize].proof_id;
            let other = self.clauses[ci as usize].proof_id;
            self.proof
                .as_mut()
                .map(|p| {
                    p.push(ProofStep::Chain {
                        lits: lits.clone(),
                        start,
                        resolutions: vec![(l.var(), other)],
                    })
                })
                .unwrap_or(0)
        };
        // Retire D; the strengthened clause takes over its duties.
        {
            let d = &mut self.clauses[dj as usize];
            d.deleted = true;
            if d.learnt {
                self.stats.learnts -= 1;
            }
        }
        let learnt = self.clauses[dj as usize].learnt;
        let old_lbd = self.clauses[dj as usize].lbd;
        // Order non-false literals first so the watches are sound (no
        // literal is true here: a root-satisfied D was skipped).
        lits.sort_by_key(|&q| self.value_lit(q) == LBOOL_FALSE);
        let n_watchable = lits
            .iter()
            .filter(|&&q| self.value_lit(q) != LBOOL_FALSE)
            .count();
        let len = lits.len();
        let cref = self.alloc_clause(lits, learnt, pid);
        if learnt {
            let lbd = old_lbd.min(len as u32).max(1);
            let c = &mut self.clauses[cref as usize];
            c.lbd = lbd;
            c.tier = Self::tier_for_lbd(lbd);
            c.used = 2;
        }
        match n_watchable {
            0 => {
                // Every literal false at level 0: refutation.
                self.record_level0_refutation_from(cref);
                self.ok = false;
                Some(SolveResult::Unsat)
            }
            1 => {
                let unit = self.clauses[cref as usize].lits[0];
                if len >= 2 {
                    self.attach(cref);
                }
                if self.value_lit(unit) == LBOOL_UNDEF {
                    self.enqueue(unit, cref);
                    if let Some(confl) = self.propagate() {
                        self.record_level0_refutation_from(confl);
                        self.ok = false;
                        return Some(SolveResult::Unsat);
                    }
                }
                None
            }
            _ => {
                self.attach(cref);
                None
            }
        }
    }

    /// Failed-literal probing: assume each unassigned literal at a
    /// throwaway decision level; a conflict makes its negation a
    /// proof-logged learnt unit (via the regular analysis path, which
    /// at level 1 always yields a unit clause).
    fn pp_probe(&mut self, ticks: &mut u64, conflicts_at_start: u64) -> Option<SolveResult> {
        debug_assert_eq!(self.decision_level(), 0);
        for v in 0..self.num_vars() {
            for neg in [false, true] {
                if self.assigns[v] != LBOOL_UNDEF {
                    break;
                }
                let probe = Lit::new(Var::new(v), neg);
                let lim = self.trail.len();
                self.trail_lim.push(lim);
                self.enqueue(probe, NO_REASON);
                let confl = self.propagate();
                let work = (self.trail.len() - lim) as u64 + 1;
                match confl {
                    None => {
                        self.backtrack(0);
                        if self.pp_charge(ticks, work, conflicts_at_start) {
                            return self.pp_stop(conflicts_at_start);
                        }
                    }
                    Some(confl) => {
                        self.stats.conflicts += 1;
                        let (learnt, bt, chain) = self.analyze(confl);
                        debug_assert_eq!(learnt.len(), 1, "level-1 analysis yields a unit");
                        debug_assert_eq!(bt, 0);
                        self.backtrack(0);
                        let pid = match (self.proof.as_mut(), chain) {
                            (Some(p), Some((start, resolutions))) => p.push(ProofStep::Chain {
                                lits: learnt.clone(),
                                start,
                                resolutions,
                            }),
                            _ => 0,
                        };
                        let asserting = learnt[0];
                        let cref = self.alloc_clause(learnt, true, pid);
                        {
                            let c = &mut self.clauses[cref as usize];
                            c.lbd = 1;
                            c.tier = TIER_CORE;
                        }
                        self.enqueue(asserting, cref);
                        if let Some(confl2) = self.propagate() {
                            self.record_level0_refutation_from(confl2);
                            self.ok = false;
                            return Some(SolveResult::Unsat);
                        }
                        if self.out_of_budget(conflicts_at_start) {
                            return Some(SolveResult::Unknown);
                        }
                        if self.pp_charge(ticks, work, conflicts_at_start) {
                            return self.pp_stop(conflicts_at_start);
                        }
                    }
                }
            }
        }
        None
    }

    // ------------------------------------------------------------------
    // clause export / import
    // ------------------------------------------------------------------

    /// Snapshots the solver's pinned knowledge for reuse elsewhere: up
    /// to `max_clauses` core-tier learnt clauses (LBD ≤ 2 — the
    /// clauses tiered reduction keeps forever) and up to
    /// `max_activities` of the hottest VSIDS activities, normalized to
    /// the maximum. See [`LearntExport`] for the determinism and
    /// soundness contract.
    ///
    /// Clauses are selected lowest-LBD first (ties broken by sorted
    /// literal content), so a cap keeps the strongest ones.
    pub fn export_learnts(&self, max_clauses: usize, max_activities: usize) -> LearntExport {
        let mut clauses: Vec<(u32, Vec<Lit>)> = self
            .learnt_refs
            .iter()
            .map(|&r| &self.clauses[r as usize])
            .filter(|c| !c.deleted && c.tier == TIER_CORE)
            .map(|c| {
                let mut lits = c.lits.clone();
                lits.sort_unstable();
                (c.lbd, lits)
            })
            .collect();
        clauses.sort_unstable();
        clauses.dedup_by(|a, b| a.1 == b.1);
        clauses.truncate(max_clauses);
        let mut activities: Vec<(Var, f64)> = self
            .activity
            .iter()
            .enumerate()
            .filter(|&(_, &a)| a > 0.0)
            .map(|(v, &a)| (Var::new(v), a))
            .collect();
        activities.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        activities.truncate(max_activities);
        if let Some(&(_, max)) = activities.first() {
            for (_, a) in &mut activities {
                *a /= max;
            }
        }
        LearntExport {
            clauses: clauses.into_iter().map(|(_, lits)| lits).collect(),
            activities,
        }
    }

    /// Replays a [`LearntExport`] into this solver as regular clauses,
    /// returning how many were added. Clauses mentioning variables this
    /// solver has not allocated are skipped.
    ///
    /// **Soundness is the caller's contract**: every imported clause
    /// must be implied by this solver's clause set (guaranteed when the
    /// donor solved the same clauses — see [`LearntExport::clauses`]).
    /// With proof logging on, imports are recorded as
    /// [`ProofStep::Original`] steps, i.e. as axioms: chains resolving
    /// on them replay unchanged, and the proof certifies the formula
    /// *extended with the imported lemmas* — equisatisfiable with the
    /// original exactly when the caller's contract holds.
    ///
    /// Donor activities are merged by maximum (scaled to this solver's
    /// current bump increment), steering early branching toward the
    /// donor's hot variables without erasing local knowledge. Resets
    /// [`Solver::failed_assumptions`]: a core computed before the
    /// import could cite literals whose status the new clauses changed.
    pub fn import_learnts(&mut self, export: &LearntExport) -> u64 {
        self.backtrack(0);
        self.conflict_core.clear();
        let mut added = 0u64;
        for clause in &export.clauses {
            if !self.ok {
                break;
            }
            if clause.iter().any(|l| l.var().index() >= self.num_vars()) {
                continue;
            }
            self.add_clause(clause.iter().copied());
            added += 1;
        }
        for &(v, a) in &export.activities {
            if v.index() >= self.num_vars() {
                continue;
            }
            let scaled = a * self.var_inc;
            if scaled > self.activity[v.index()] {
                self.activity[v.index()] = scaled;
                self.heap.decrease_key(v, &self.activity);
            }
        }
        added
    }

    // ------------------------------------------------------------------
    // results
    // ------------------------------------------------------------------

    /// The value of `l` in the last model (after [`SolveResult::Sat`]).
    /// `None` if no model is stored or the variable is out of range.
    pub fn model_value(&self, l: Lit) -> Option<bool> {
        let a = *self.model.get(l.var().index())?;
        if a == LBOOL_UNDEF {
            None
        } else {
            Some((a == LBOOL_TRUE) ^ l.is_neg())
        }
    }

    /// The last model as a `Vec<bool>` indexed by variable (unassigned
    /// variables default to `false`).
    pub fn model(&self) -> Vec<bool> {
        self.model.iter().map(|&a| a == LBOOL_TRUE).collect()
    }

    /// After an UNSAT answer from [`Solver::solve_with_assumptions`],
    /// the subset of assumption literals forming a contradictory core
    /// (empty when the clause set alone is UNSAT).
    pub fn failed_assumptions(&self) -> &[Lit] {
        &self.conflict_core
    }
}
