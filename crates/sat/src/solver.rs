use std::time::Instant;

use step_cnf::{Cnf, Lit, Var};

use crate::heap::VarHeap;
use crate::proof::{ClauseId, Proof, ProofStep};

/// Result of a (possibly budgeted) solver call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SolveResult {
    /// A model was found; read it with [`Solver::model_value`].
    Sat,
    /// The formula (under the given assumptions) is unsatisfiable;
    /// read the assumption core with [`Solver::failed_assumptions`].
    Unsat,
    /// A conflict budget or deadline expired before an answer.
    Unknown,
}

/// Counters exposed for benchmarking and tuning.
#[derive(Clone, Copy, Default, Debug)]
pub struct SolverStats {
    /// Conflicts encountered.
    pub conflicts: u64,
    /// Decisions taken.
    pub decisions: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Learnt clauses currently in the database.
    pub learnts: u64,
}

/// A monotone snapshot of the *effort* a solver has expended: the
/// machine-independent counters that make solver work comparable
/// across hosts, `--jobs` values and background load (unlike wall
/// clock). Conflicts are the deterministic budgeting unit —
/// [`Solver::set_effort_budget`] truncates a call at an exact conflict
/// count, so a budgeted `Unknown` falls on the same call on every
/// machine.
///
/// Snapshots are cumulative over a solver's lifetime; diff two with
/// [`EffortStats::since`] to charge one call's work to a budget.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct EffortStats {
    /// Conflicts encountered (the budgeting currency).
    pub conflicts: u64,
    /// Decisions taken.
    pub decisions: u64,
    /// Literals propagated.
    pub propagations: u64,
}

impl EffortStats {
    /// The effort expended since an `earlier` snapshot of the same
    /// solver (saturating, so a stale snapshot can never underflow).
    pub fn since(self, earlier: EffortStats) -> EffortStats {
        EffortStats {
            conflicts: self.conflicts.saturating_sub(earlier.conflicts),
            decisions: self.decisions.saturating_sub(earlier.decisions),
            propagations: self.propagations.saturating_sub(earlier.propagations),
        }
    }
}

impl std::ops::Add for EffortStats {
    type Output = EffortStats;

    fn add(self, rhs: EffortStats) -> EffortStats {
        EffortStats {
            conflicts: self.conflicts + rhs.conflicts,
            decisions: self.decisions + rhs.decisions,
            propagations: self.propagations + rhs.propagations,
        }
    }
}

impl std::ops::AddAssign for EffortStats {
    fn add_assign(&mut self, rhs: EffortStats) {
        *self = *self + rhs;
    }
}

const LBOOL_TRUE: u8 = 1;
const LBOOL_FALSE: u8 = 0;
const LBOOL_UNDEF: u8 = 2;

type ClauseRef = u32;
const NO_REASON: ClauseRef = u32::MAX;

#[derive(Debug)]
struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
    deleted: bool,
    activity: f64,
    lbd: u32,
    proof_id: ClauseId,
}

#[derive(Clone, Copy, Debug)]
struct Watcher {
    cref: ClauseRef,
    blocker: Lit,
}

#[derive(Clone, Copy, Debug)]
struct VarData {
    reason: ClauseRef,
    level: u32,
}

/// A CDCL SAT solver with assumptions, cores, budgets and optional
/// resolution proof logging. See the [crate docs](crate) for an
/// overview and an example.
pub struct Solver {
    clauses: Vec<Clause>,
    watches: Vec<Vec<Watcher>>,
    assigns: Vec<u8>,
    vardata: Vec<VarData>,
    polarity: Vec<bool>,
    activity: Vec<f64>,
    heap: VarHeap,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    ok: bool,
    var_inc: f64,
    cla_inc: f64,
    seen: Vec<bool>,
    model: Vec<u8>,
    conflict_core: Vec<Lit>,
    learnt_refs: Vec<ClauseRef>,
    max_learnts: f64,
    stats: SolverStats,
    conflict_budget: Option<u64>,
    deadline: Option<Instant>,
    proof: Option<Proof>,
}

impl Default for Solver {
    fn default() -> Self {
        Solver::new()
    }
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Solver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            vardata: Vec::new(),
            polarity: Vec::new(),
            activity: Vec::new(),
            heap: VarHeap::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            ok: true,
            var_inc: 1.0,
            cla_inc: 1.0,
            seen: Vec::new(),
            model: Vec::new(),
            conflict_core: Vec::new(),
            learnt_refs: Vec::new(),
            max_learnts: 8000.0,
            stats: SolverStats::default(),
            conflict_budget: None,
            deadline: None,
            proof: None,
        }
    }

    /// Turns on resolution proof logging (must be called before any
    /// clause is added). Disables learnt-clause minimization and
    /// level-0 clause strengthening so recorded chains stay exact.
    ///
    /// # Panics
    ///
    /// Panics if clauses have already been added.
    pub fn enable_proof(&mut self) {
        assert!(
            self.clauses.is_empty(),
            "enable_proof must be called before adding clauses"
        );
        self.proof = Some(Proof::new());
    }

    /// The logged proof, if proof logging is enabled.
    pub fn proof(&self) -> Option<&Proof> {
        self.proof.as_ref()
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::new(self.assigns.len());
        self.assigns.push(LBOOL_UNDEF);
        self.vardata.push(VarData {
            reason: NO_REASON,
            level: 0,
        });
        self.polarity.push(false);
        self.activity.push(0.0);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.heap.grow(self.assigns.len());
        self.heap.insert(v, &self.activity);
        v
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Ensures variables `0..n` exist.
    pub fn ensure_vars(&mut self, n: usize) {
        while self.num_vars() < n {
            self.new_var();
        }
    }

    /// Whether the clause set is still possibly satisfiable (false once
    /// a top-level conflict has been derived).
    pub fn is_ok(&self) -> bool {
        self.ok
    }

    /// Solver statistics.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// A monotone snapshot of the effort expended so far (conflicts,
    /// decisions, propagations). Snapshots only grow across solve
    /// calls; diff two with [`EffortStats::since`] to account one
    /// call's work.
    pub fn effort(&self) -> EffortStats {
        EffortStats {
            conflicts: self.stats.conflicts,
            decisions: self.stats.decisions,
            propagations: self.stats.propagations,
        }
    }

    /// Limits the *next* solve call to `conflicts` conflicts
    /// (`None` = unlimited); an exhausted call returns
    /// [`SolveResult::Unknown`] at that exact count. Unlike a
    /// wall-clock deadline, the cut-off point is machine-independent:
    /// it is the deterministic budgeting surface underneath
    /// `step-core`'s `Work` budgets. The budget applies per call (it
    /// persists until replaced, resetting its baseline each call).
    pub fn set_effort_budget(&mut self, conflicts: Option<u64>) {
        self.conflict_budget = conflicts;
    }

    /// Alias of [`Solver::set_effort_budget`], kept for callers of the
    /// original conflict-budget name.
    pub fn set_conflict_budget(&mut self, conflicts: Option<u64>) {
        self.set_effort_budget(conflicts);
    }

    /// Sets a wall-clock deadline for subsequent solve calls
    /// (`None` = no deadline).
    pub fn set_deadline(&mut self, deadline: Option<Instant>) {
        self.deadline = deadline;
    }

    fn value_lit(&self, l: Lit) -> u8 {
        let a = self.assigns[l.var().index()];
        if a == LBOOL_UNDEF {
            LBOOL_UNDEF
        } else {
            a ^ l.is_neg() as u8
        }
    }

    fn level(&self, v: Var) -> u32 {
        self.vardata[v.index()].level
    }

    fn reason(&self, v: Var) -> ClauseRef {
        self.vardata[v.index()].reason
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    // ------------------------------------------------------------------
    // clause management
    // ------------------------------------------------------------------

    /// Adds a clause. Returns the proof [`ClauseId`] when proof logging
    /// is on (also for clauses that are simplified away), else `None`.
    ///
    /// Once the solver is in an unsatisfiable top-level state
    /// ([`Solver::is_ok`] is `false`), further clauses are recorded in
    /// the proof but otherwise ignored.
    ///
    /// # Panics
    ///
    /// Panics if called between `solve` calls at a non-zero decision
    /// level (cannot happen through the public API) or if a literal
    /// references an unallocated variable.
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) -> Option<ClauseId> {
        assert_eq!(self.decision_level(), 0, "clauses must be added at level 0");
        let mut c: Vec<Lit> = lits.into_iter().collect();
        for l in &c {
            assert!(
                l.var().index() < self.num_vars(),
                "unallocated variable in clause"
            );
        }
        c.sort_unstable();
        c.dedup();
        let tautology = c.windows(2).any(|w| w[0].var() == w[1].var());
        let pid = self
            .proof
            .as_mut()
            .map(|p| p.push(ProofStep::Original { lits: c.clone() }));
        if !self.ok || tautology {
            return pid;
        }
        if self.proof.is_none() {
            // Strengthen with the top-level assignment.
            if c.iter().any(|&l| self.value_lit(l) == LBOOL_TRUE) {
                return pid;
            }
            c.retain(|&l| self.value_lit(l) != LBOOL_FALSE);
        }
        if c.is_empty() {
            // Either the clause was empty as given, or (proof off) all
            // literals were false at level 0. In proof mode clauses are
            // never strengthened, so an empty `c` is an empty input
            // clause — the proof already marks it as the refutation.
            self.ok = false;
            return pid;
        }
        // Order literals: non-false first so watches are sound.
        c.sort_by_key(|&l| self.value_lit(l) == LBOOL_FALSE);
        let n_watchable = c
            .iter()
            .filter(|&&l| self.value_lit(l) != LBOOL_FALSE)
            .count();
        let cref = self.alloc_clause(c, false, pid.unwrap_or(0));
        match n_watchable {
            0 => {
                // Conflict at level 0.
                self.record_level0_refutation_from(cref);
                self.ok = false;
            }
            1 => {
                let unit = self.clauses[cref as usize].lits[0];
                if self.clauses[cref as usize].lits.len() >= 2 {
                    self.attach(cref);
                }
                if self.value_lit(unit) == LBOOL_UNDEF {
                    self.enqueue(unit, cref);
                    if let Some(confl) = self.propagate() {
                        self.record_level0_refutation_from(confl);
                        self.ok = false;
                    }
                }
            }
            _ => {
                self.attach(cref);
            }
        }
        pid
    }

    /// Adds every clause of a [`Cnf`] (allocating variables as needed).
    pub fn add_cnf(&mut self, cnf: &Cnf) {
        self.ensure_vars(cnf.num_vars());
        for clause in cnf.clauses() {
            self.add_clause(clause.iter().copied());
        }
    }

    fn alloc_clause(&mut self, lits: Vec<Lit>, learnt: bool, proof_id: ClauseId) -> ClauseRef {
        let cref = self.clauses.len() as ClauseRef;
        self.clauses.push(Clause {
            lits,
            learnt,
            deleted: false,
            activity: 0.0,
            lbd: 0,
            proof_id,
        });
        if learnt {
            self.learnt_refs.push(cref);
            self.stats.learnts += 1;
        }
        cref
    }

    fn attach(&mut self, cref: ClauseRef) {
        let (w0, w1) = {
            let c = &self.clauses[cref as usize];
            debug_assert!(c.lits.len() >= 2);
            (c.lits[0], c.lits[1])
        };
        self.watches[(!w0).code() as usize].push(Watcher { cref, blocker: w1 });
        self.watches[(!w1).code() as usize].push(Watcher { cref, blocker: w0 });
    }

    // ------------------------------------------------------------------
    // trail
    // ------------------------------------------------------------------

    fn enqueue(&mut self, l: Lit, reason: ClauseRef) {
        debug_assert_eq!(self.value_lit(l), LBOOL_UNDEF);
        self.assigns[l.var().index()] = (!l.is_neg()) as u8;
        self.vardata[l.var().index()] = VarData {
            reason,
            level: self.decision_level(),
        };
        self.trail.push(l);
    }

    fn backtrack(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let lim = self.trail_lim[level as usize];
        for i in (lim..self.trail.len()).rev() {
            let l = self.trail[i];
            let v = l.var();
            self.assigns[v.index()] = LBOOL_UNDEF;
            self.polarity[v.index()] = !l.is_neg();
            self.heap.insert(v, &self.activity);
        }
        self.trail.truncate(lim);
        self.trail_lim.truncate(level as usize);
        self.qhead = lim;
    }

    // ------------------------------------------------------------------
    // propagation
    // ------------------------------------------------------------------

    fn propagate(&mut self) -> Option<ClauseRef> {
        let mut conflict = None;
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let ws = std::mem::take(&mut self.watches[p.code() as usize]);
            let mut kept = Vec::with_capacity(ws.len());
            let mut i = 0;
            'watchers: while i < ws.len() {
                let w = ws[i];
                i += 1;
                if self.clauses[w.cref as usize].deleted {
                    continue;
                }
                if self.value_lit(w.blocker) == LBOOL_TRUE {
                    kept.push(w);
                    continue;
                }
                let false_lit = !p;
                // Normalize: watched false literal at position 1.
                {
                    let c = &mut self.clauses[w.cref as usize];
                    if c.lits[0] == false_lit {
                        c.lits.swap(0, 1);
                    }
                    debug_assert_eq!(c.lits[1], false_lit);
                }
                let first = self.clauses[w.cref as usize].lits[0];
                let w = Watcher {
                    cref: w.cref,
                    blocker: first,
                };
                if self.value_lit(first) == LBOOL_TRUE {
                    kept.push(w);
                    continue;
                }
                // Find a replacement watch.
                let len = self.clauses[w.cref as usize].lits.len();
                for k in 2..len {
                    let lk = self.clauses[w.cref as usize].lits[k];
                    if self.value_lit(lk) != LBOOL_FALSE {
                        self.clauses[w.cref as usize].lits.swap(1, k);
                        self.watches[(!lk).code() as usize].push(w);
                        continue 'watchers;
                    }
                }
                // Unit or conflict.
                kept.push(w);
                if self.value_lit(first) == LBOOL_FALSE {
                    conflict = Some(w.cref);
                    self.qhead = self.trail.len();
                    kept.extend_from_slice(&ws[i..]);
                    break;
                } else {
                    self.enqueue(first, w.cref);
                }
            }
            self.watches[p.code() as usize] = kept;
            if conflict.is_some() {
                break;
            }
        }
        conflict
    }

    // ------------------------------------------------------------------
    // conflict analysis
    // ------------------------------------------------------------------

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.heap.decrease_key(v, &self.activity);
    }

    fn bump_clause(&mut self, cref: ClauseRef) {
        let c = &mut self.clauses[cref as usize];
        c.activity += self.cla_inc;
        if c.activity > 1e20 {
            for &lr in &self.learnt_refs {
                self.clauses[lr as usize].activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    /// First-UIP analysis. Returns (learnt clause with asserting literal
    /// first, backtrack level, proof chain pieces).
    #[allow(clippy::type_complexity)]
    fn analyze(
        &mut self,
        confl: ClauseRef,
    ) -> (Vec<Lit>, u32, Option<(ClauseId, Vec<(Var, ClauseId)>)>) {
        let mut learnt: Vec<Lit> = vec![Lit::pos(Var::new(0))]; // placeholder slot 0
        let mut counter = 0u32;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut cref = confl;
        let proof_on = self.proof.is_some();
        let chain_start = self.clauses[confl as usize].proof_id;
        let mut resolutions: Vec<(Var, ClauseId)> = Vec::new();
        let mut zero_vars: Vec<Var> = Vec::new();
        let mut zero_seen = vec![false; if proof_on { self.num_vars() } else { 0 }];
        let cur_level = self.decision_level();

        loop {
            if self.clauses[cref as usize].learnt {
                self.bump_clause(cref);
            }
            let lits = self.clauses[cref as usize].lits.clone();
            for &q in &lits {
                // Skip the pivot literal of this resolution step.
                if let Some(pl) = p {
                    if q.var() == pl.var() {
                        continue;
                    }
                }
                let v = q.var();
                if self.seen[v.index()] {
                    continue;
                }
                if self.level(v) > 0 {
                    self.seen[v.index()] = true;
                    self.bump_var(v);
                    if self.level(v) >= cur_level {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                } else if proof_on && !zero_seen[v.index()] {
                    zero_seen[v.index()] = true;
                    zero_vars.push(v);
                }
            }
            // Find next literal to resolve on.
            loop {
                index -= 1;
                let l = self.trail[index];
                if self.seen[l.var().index()] {
                    p = Some(l);
                    break;
                }
            }
            let pv = p.expect("found pivot").var();
            self.seen[pv.index()] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = !p.expect("asserting literal");
                break;
            }
            cref = self.reason(pv);
            debug_assert_ne!(cref, NO_REASON, "non-decision must have a reason");
            if proof_on {
                resolutions.push((pv, self.clauses[cref as usize].proof_id));
            }
        }

        // Learnt-clause minimization (proof off only: removing a literal
        // is an implicit resolution we would otherwise have to log).
        let all_vars: Vec<Var> = learnt.iter().map(|l| l.var()).collect();
        if !proof_on {
            let keep: Vec<bool> = learnt
                .iter()
                .enumerate()
                .map(|(i, &l)| i == 0 || !self.literal_redundant(l))
                .collect();
            let mut k = 0;
            learnt.retain(|_| {
                k += 1;
                keep[k - 1]
            });
        }

        // Clear `seen` for every marked literal (including minimized-away
        // ones, which must not pollute the next analysis).
        for v in all_vars {
            self.seen[v.index()] = false;
        }

        // Backtrack level = highest level among learnt[1..].
        let mut bt = 0;
        if learnt.len() > 1 {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level(learnt[i].var()) > self.level(learnt[max_i].var()) {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            bt = self.level(learnt[1].var());
        }

        let chain = if proof_on {
            // Resolve away the level-0 literals dropped above.
            let extra = self.level0_resolutions(&mut zero_seen, zero_vars);
            let mut res = resolutions;
            res.extend(extra);
            Some((chain_start, res))
        } else {
            None
        };
        (learnt, bt, chain)
    }

    /// Cheap self-subsumption: `l` is redundant if its reason's other
    /// literals are all already in the learnt clause (marked seen) or at
    /// level 0.
    fn literal_redundant(&self, l: Lit) -> bool {
        let r = self.reason(l.var());
        if r == NO_REASON {
            return false;
        }
        self.clauses[r as usize]
            .lits
            .iter()
            .all(|&q| q.var() == l.var() || self.seen[q.var().index()] || self.level(q.var()) == 0)
    }

    /// Appends resolutions eliminating all marked level-0 variables, in
    /// reverse trail order. `zero_seen` marks the variables; reasons may
    /// introduce further level-0 variables, which are marked too.
    fn level0_resolutions(
        &self,
        zero_seen: &mut [bool],
        mut worklist: Vec<Var>,
    ) -> Vec<(Var, ClauseId)> {
        let mut res = Vec::new();
        if worklist.is_empty() {
            return res;
        }
        let zero_end = self.trail_lim.first().copied().unwrap_or(self.trail.len());
        for i in (0..zero_end).rev() {
            let v = self.trail[i].var();
            if !zero_seen[v.index()] {
                continue;
            }
            let r = self.reason(v);
            debug_assert_ne!(r, NO_REASON, "level-0 assignments always have reasons");
            res.push((v, self.clauses[r as usize].proof_id));
            for &q in &self.clauses[r as usize].lits {
                if q.var() != v && !zero_seen[q.var().index()] {
                    debug_assert_eq!(self.level(q.var()), 0);
                    zero_seen[q.var().index()] = true;
                    worklist.push(q.var());
                }
            }
        }
        res
    }

    /// Records the derivation of the empty clause from a conflict at
    /// decision level 0.
    fn record_level0_refutation_from(&mut self, confl: ClauseRef) {
        if self.proof.is_none() {
            return;
        }
        let start = self.clauses[confl as usize].proof_id;
        let mut zero_seen = vec![false; self.num_vars()];
        let mut worklist = Vec::new();
        for &q in &self.clauses[confl as usize].lits {
            if !zero_seen[q.var().index()] {
                zero_seen[q.var().index()] = true;
                worklist.push(q.var());
            }
        }
        let res = self.level0_resolutions(&mut zero_seen, worklist);
        if let Some(p) = self.proof.as_mut() {
            p.push(ProofStep::Chain {
                lits: Vec::new(),
                start,
                resolutions: res,
            });
        }
    }

    /// The subset of the assumptions responsible for `p` being false
    /// (MiniSat's `analyzeFinal`): stored into `conflict_core` as the
    /// assumption literals themselves.
    fn analyze_final(&mut self, p: Lit) {
        self.conflict_core.clear();
        self.conflict_core.push(p);
        if self.decision_level() == 0 {
            return;
        }
        self.seen[p.var().index()] = true;
        for i in (self.trail_lim[0]..self.trail.len()).rev() {
            let v = self.trail[i].var();
            if !self.seen[v.index()] {
                continue;
            }
            let r = self.reason(v);
            if r == NO_REASON {
                // An assumption decision: trail literal is the
                // assumption itself.
                self.conflict_core.push(self.trail[i]);
            } else {
                for &q in &self.clauses[r as usize].lits {
                    if q.var() != v && self.level(q.var()) > 0 {
                        self.seen[q.var().index()] = true;
                    }
                }
            }
            self.seen[v.index()] = false;
        }
        self.seen[p.var().index()] = false;
    }

    // ------------------------------------------------------------------
    // search
    // ------------------------------------------------------------------

    fn pick_branch_var(&mut self) -> Option<Var> {
        while let Some(v) = self.heap.pop(&self.activity) {
            if self.assigns[v.index()] == LBOOL_UNDEF {
                return Some(v);
            }
        }
        None
    }

    fn reduce_db(&mut self) {
        let act = |c: &Clause| c.activity;
        self.learnt_refs
            .retain(|&r| !self.clauses[r as usize].deleted);
        let mut refs = self.learnt_refs.clone();
        refs.sort_by(|&a, &b| {
            let (ca, cb) = (&self.clauses[a as usize], &self.clauses[b as usize]);
            ca.lbd.cmp(&cb.lbd).then(
                act(cb)
                    .partial_cmp(&act(ca))
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
        });
        // Delete the worse half, keeping locked clauses and LBD <= 2.
        let keep_from = refs.len() / 2;
        for &r in &refs[keep_from..] {
            let locked = {
                let c = &self.clauses[r as usize];
                let l0 = c.lits[0];
                self.value_lit(l0) == LBOOL_TRUE && self.reason(l0.var()) == r
            };
            let c = &mut self.clauses[r as usize];
            if !locked && c.lbd > 2 && c.lits.len() > 2 {
                c.deleted = true;
                self.stats.learnts -= 1;
            }
        }
        self.learnt_refs
            .retain(|&r| !self.clauses[r as usize].deleted);
    }

    fn luby(mut x: u64) -> u64 {
        // Luby sequence: 1 1 2 1 1 2 4 ...
        let mut size = 1u64;
        let mut seq = 0u64;
        while size < x + 1 {
            seq += 1;
            size = 2 * size + 1;
        }
        while size - 1 != x {
            size = (size - 1) / 2;
            seq -= 1;
            x %= size;
        }
        1u64 << seq
    }

    fn out_of_budget(&self, conflicts_at_start: u64) -> bool {
        if let Some(b) = self.conflict_budget {
            if self.stats.conflicts - conflicts_at_start >= b {
                return true;
            }
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return true;
            }
        }
        false
    }

    /// Solves the current formula without assumptions.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with_assumptions(&[])
    }

    /// Solves under the given assumption literals.
    ///
    /// On [`SolveResult::Unsat`], [`Solver::failed_assumptions`] holds a
    /// subset of `assumptions` that is already contradictory with the
    /// clauses (the *core*; empty when the clauses alone are UNSAT).
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.conflict_core.clear();
        if !self.ok {
            return SolveResult::Unsat;
        }
        self.backtrack(0);
        if let Some(confl) = self.propagate() {
            self.record_level0_refutation_from(confl);
            self.ok = false;
            return SolveResult::Unsat;
        }
        let conflicts_at_start = self.stats.conflicts;
        let mut restart_num = 0u64;
        let mut restart_budget = 100 * Self::luby(restart_num);
        let mut conflicts_this_restart = 0u64;

        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_this_restart += 1;
                if self.decision_level() == 0 {
                    self.record_level0_refutation_from(confl);
                    self.ok = false;
                    return SolveResult::Unsat;
                }
                let (learnt, bt, chain) = self.analyze(confl);
                self.backtrack(bt);
                let pid = match (self.proof.as_mut(), chain) {
                    (Some(p), Some((start, resolutions))) => p.push(ProofStep::Chain {
                        lits: learnt.clone(),
                        start,
                        resolutions,
                    }),
                    _ => 0,
                };
                let lbd = self.compute_lbd(&learnt);
                let asserting = learnt[0];
                let len = learnt.len();
                let cref = self.alloc_clause(learnt, true, pid);
                self.clauses[cref as usize].lbd = lbd;
                if len >= 2 {
                    self.attach(cref);
                }
                self.enqueue(asserting, cref);
                self.var_inc /= 0.95;
                self.cla_inc /= 0.999;
                if self.out_of_budget(conflicts_at_start) {
                    self.backtrack(0);
                    return SolveResult::Unknown;
                }
                if self.stats.learnts as f64 > self.max_learnts {
                    self.reduce_db();
                    self.max_learnts *= 1.3;
                }
            } else {
                if conflicts_this_restart >= restart_budget {
                    restart_num += 1;
                    restart_budget = 100 * Self::luby(restart_num);
                    conflicts_this_restart = 0;
                    self.stats.restarts += 1;
                    self.backtrack(0);
                    continue;
                }
                // Establish assumptions as pseudo-decisions.
                let dl = self.decision_level() as usize;
                if dl < assumptions.len() {
                    let a = assumptions[dl];
                    match self.value_lit(a) {
                        LBOOL_TRUE => {
                            // Already implied: open an empty level.
                            self.trail_lim.push(self.trail.len());
                        }
                        LBOOL_FALSE => {
                            self.analyze_final(a);
                            return SolveResult::Unsat;
                        }
                        _ => {
                            self.stats.decisions += 1;
                            self.trail_lim.push(self.trail.len());
                            self.enqueue(a, NO_REASON);
                        }
                    }
                    continue;
                }
                match self.pick_branch_var() {
                    None => {
                        // Full model.
                        self.model = self.assigns.clone();
                        self.backtrack(0);
                        return SolveResult::Sat;
                    }
                    Some(v) => {
                        self.stats.decisions += 1;
                        if self.out_of_budget(conflicts_at_start) {
                            self.backtrack(0);
                            return SolveResult::Unknown;
                        }
                        let l = Lit::new(v, !self.polarity[v.index()]);
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(l, NO_REASON);
                    }
                }
            }
        }
    }

    fn compute_lbd(&mut self, lits: &[Lit]) -> u32 {
        let mut levels: Vec<u32> = lits.iter().map(|l| self.level(l.var())).collect();
        levels.sort_unstable();
        levels.dedup();
        levels.len() as u32
    }

    // ------------------------------------------------------------------
    // results
    // ------------------------------------------------------------------

    /// The value of `l` in the last model (after [`SolveResult::Sat`]).
    /// `None` if no model is stored or the variable is out of range.
    pub fn model_value(&self, l: Lit) -> Option<bool> {
        let a = *self.model.get(l.var().index())?;
        if a == LBOOL_UNDEF {
            None
        } else {
            Some((a == LBOOL_TRUE) ^ l.is_neg())
        }
    }

    /// The last model as a `Vec<bool>` indexed by variable (unassigned
    /// variables default to `false`).
    pub fn model(&self) -> Vec<bool> {
        self.model.iter().map(|&a| a == LBOOL_TRUE).collect()
    }

    /// After an UNSAT answer from [`Solver::solve_with_assumptions`],
    /// the subset of assumption literals forming a contradictory core
    /// (empty when the clause set alone is UNSAT).
    pub fn failed_assumptions(&self) -> &[Lit] {
        &self.conflict_core
    }
}
