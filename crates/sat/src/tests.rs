use step_cnf::{Cnf, Lit, Var};

use crate::{ClauseDbPolicy, EffortStats, RestartPolicy, SolveResult, Solver};

fn lit(v: i64) -> Lit {
    Lit::from_dimacs(v)
}

fn solver_with(nvars: usize, clauses: &[&[i64]]) -> Solver {
    let mut s = Solver::new();
    s.ensure_vars(nvars);
    for c in clauses {
        s.add_clause(c.iter().map(|&v| lit(v)));
    }
    s
}

/// Brute-force satisfiability of a clause list.
fn brute_force_sat(nvars: usize, clauses: &[Vec<Lit>]) -> bool {
    assert!(nvars <= 20);
    (0..1usize << nvars).any(|m| {
        let a: Vec<bool> = (0..nvars).map(|i| m >> i & 1 == 1).collect();
        clauses.iter().all(|c| c.iter().any(|l| l.eval(&a)))
    })
}

#[test]
fn empty_formula_is_sat() {
    let mut s = Solver::new();
    assert_eq!(s.solve(), SolveResult::Sat);
}

#[test]
fn empty_clause_is_unsat() {
    let mut s = Solver::new();
    s.add_clause([]);
    assert!(!s.is_ok());
    assert_eq!(s.solve(), SolveResult::Unsat);
}

#[test]
fn unit_propagation_only() {
    let mut s = solver_with(3, &[&[1], &[-1, 2], &[-2, 3]]);
    assert_eq!(s.solve(), SolveResult::Sat);
    assert_eq!(s.model_value(lit(1)), Some(true));
    assert_eq!(s.model_value(lit(2)), Some(true));
    assert_eq!(s.model_value(lit(3)), Some(true));
}

#[test]
fn simple_unsat_chain() {
    let mut s = solver_with(2, &[&[1], &[-1, 2], &[-2], &[1, 2]]);
    assert_eq!(s.solve(), SolveResult::Unsat);
    // Subsequent calls remain UNSAT.
    assert_eq!(s.solve(), SolveResult::Unsat);
}

#[test]
fn contradictory_units() {
    let mut s = solver_with(1, &[&[1], &[-1]]);
    assert_eq!(s.solve(), SolveResult::Unsat);
}

#[test]
fn tautology_is_ignored() {
    let mut s = solver_with(2, &[&[1, -1], &[2]]);
    assert_eq!(s.solve(), SolveResult::Sat);
    assert_eq!(s.model_value(lit(2)), Some(true));
}

#[test]
fn duplicate_literals_are_merged() {
    let mut s = solver_with(1, &[&[1, 1, 1]]);
    assert_eq!(s.solve(), SolveResult::Sat);
    assert_eq!(s.model_value(lit(1)), Some(true));
}

#[test]
fn requires_search() {
    // XOR-ish constraints force actual branching + learning.
    let mut s = solver_with(
        4,
        &[
            &[1, 2],
            &[-1, -2],
            &[2, 3],
            &[-2, -3],
            &[3, 4],
            &[-3, -4],
            &[1, 4],
        ],
    );
    assert_eq!(s.solve(), SolveResult::Sat);
    let m: Vec<bool> = (1..=4).map(|v| s.model_value(lit(v)).unwrap()).collect();
    assert!(m[0] ^ m[1]);
    assert!(m[1] ^ m[2]);
    assert!(m[2] ^ m[3]);
    assert!(m[0] || m[3]);
}

/// Pigeonhole principle: n+1 pigeons into n holes — UNSAT and hard
/// enough to exercise learning, restarts and DB reduction.
fn pigeonhole(n: usize) -> (usize, Vec<Vec<Lit>>) {
    let pigeons = n + 1;
    let var = |p: usize, h: usize| Lit::pos(Var::new(p * n + h));
    let mut clauses = Vec::new();
    for p in 0..pigeons {
        clauses.push((0..n).map(|h| var(p, h)).collect());
    }
    for h in 0..n {
        for p1 in 0..pigeons {
            for p2 in p1 + 1..pigeons {
                clauses.push(vec![!var(p1, h), !var(p2, h)]);
            }
        }
    }
    (pigeons * n, clauses)
}

#[test]
fn pigeonhole_unsat() {
    for n in 2..=5 {
        let (nv, clauses) = pigeonhole(n);
        let mut s = Solver::new();
        s.ensure_vars(nv);
        for c in &clauses {
            s.add_clause(c.iter().copied());
        }
        assert_eq!(s.solve(), SolveResult::Unsat, "PHP({}) must be UNSAT", n);
    }
}

#[test]
fn pigeonhole_n_pigeons_sat() {
    // n pigeons into n holes is satisfiable.
    let n = 4;
    let var = |p: usize, h: usize| Lit::pos(Var::new(p * n + h));
    let mut s = Solver::new();
    s.ensure_vars(n * n);
    for p in 0..n {
        s.add_clause((0..n).map(|h| var(p, h)));
    }
    for h in 0..n {
        for p1 in 0..n {
            for p2 in p1 + 1..n {
                s.add_clause([!var(p1, h), !var(p2, h)]);
            }
        }
    }
    assert_eq!(s.solve(), SolveResult::Sat);
    // Verify the model is a valid assignment.
    for p in 0..n {
        assert!((0..n).any(|h| s.model_value(var(p, h)) == Some(true)));
    }
}

#[test]
fn add_cnf_interface() {
    let mut cnf = Cnf::new();
    let x = Lit::pos(cnf.new_var());
    let y = Lit::pos(cnf.new_var());
    cnf.add_clause([x, y]);
    cnf.add_clause([!x, y]);
    let mut s = Solver::new();
    s.add_cnf(&cnf);
    assert_eq!(s.solve(), SolveResult::Sat);
    assert_eq!(s.model_value(y), Some(true));
}

// ---------------------------------------------------------------------
// assumptions & cores
// ---------------------------------------------------------------------

#[test]
fn assumptions_flip_result() {
    let mut s = solver_with(2, &[&[1, 2]]);
    assert_eq!(
        s.solve_with_assumptions(&[lit(-1), lit(-2)]),
        SolveResult::Unsat
    );
    assert_eq!(s.solve_with_assumptions(&[lit(-1)]), SolveResult::Sat);
    assert_eq!(s.model_value(lit(2)), Some(true));
    assert_eq!(
        s.solve_with_assumptions(&[lit(1), lit(2)]),
        SolveResult::Sat
    );
    // Solver stays reusable.
    assert_eq!(s.solve(), SolveResult::Sat);
}

#[test]
fn failed_assumptions_form_core() {
    // x1 -> x2, x2 -> x3, assume x1 and ¬x3: core must contain both.
    let mut s = solver_with(4, &[&[-1, 2], &[-2, 3]]);
    let r = s.solve_with_assumptions(&[lit(1), lit(4), lit(-3)]);
    assert_eq!(r, SolveResult::Unsat);
    let core = s.failed_assumptions().to_vec();
    assert!(core.contains(&lit(1)), "core {core:?} must contain x1");
    assert!(core.contains(&lit(-3)), "core {core:?} must contain ¬x3");
    assert!(!core.contains(&lit(4)), "x4 is irrelevant: {core:?}");
    // The core itself must be contradictory with the clauses.
    let r2 = s.solve_with_assumptions(&core);
    assert_eq!(r2, SolveResult::Unsat);
}

#[test]
fn core_empty_when_clauses_unsat() {
    let mut s = solver_with(2, &[&[1], &[-1]]);
    assert_eq!(s.solve_with_assumptions(&[lit(2)]), SolveResult::Unsat);
    assert!(s.failed_assumptions().is_empty());
}

#[test]
fn assumption_of_level0_implied_literal() {
    let mut s = solver_with(2, &[&[1], &[-1, 2]]);
    assert_eq!(
        s.solve_with_assumptions(&[lit(1), lit(2)]),
        SolveResult::Sat
    );
    assert_eq!(s.solve_with_assumptions(&[lit(-2)]), SolveResult::Unsat);
    let core = s.failed_assumptions();
    assert_eq!(core, &[lit(-2)], "already-false assumption is its own core");
}

#[test]
fn incremental_clause_addition() {
    let mut s = solver_with(3, &[&[1, 2]]);
    assert_eq!(s.solve(), SolveResult::Sat);
    s.add_clause([lit(-1)]);
    assert_eq!(s.solve(), SolveResult::Sat);
    assert_eq!(s.model_value(lit(2)), Some(true));
    s.add_clause([lit(-2)]);
    assert_eq!(s.solve(), SolveResult::Unsat);
}

#[test]
fn directly_contradictory_assumptions() {
    let mut s = solver_with(2, &[&[1, 2]]);
    let r = s.solve_with_assumptions(&[lit(1), lit(-1)]);
    assert_eq!(r, SolveResult::Unsat);
    let core = s.failed_assumptions();
    assert!(
        core.contains(&lit(1)) && core.contains(&lit(-1)),
        "core {core:?}"
    );
    // Still reusable afterwards.
    assert_eq!(s.solve(), SolveResult::Sat);
}

#[test]
fn duplicate_assumptions_are_harmless() {
    let mut s = solver_with(2, &[&[-1, 2]]);
    assert_eq!(
        s.solve_with_assumptions(&[lit(1), lit(1), lit(2), lit(1)]),
        SolveResult::Sat
    );
    assert_eq!(s.model_value(lit(2)), Some(true));
}

#[test]
fn many_assumptions_deep_chain() {
    // x1 -> x2 -> ... -> x20; assume x1 and ¬x20.
    let n = 20;
    let mut s = Solver::new();
    s.ensure_vars(n);
    for i in 1..n {
        s.add_clause([lit(-(i as i64)), lit(i as i64 + 1)]);
    }
    let r = s.solve_with_assumptions(&[lit(1), lit(-(n as i64))]);
    assert_eq!(r, SolveResult::Unsat);
    let core = s.failed_assumptions();
    assert_eq!(core.len(), 2, "exactly the two ends: {core:?}");
}

#[test]
fn model_is_total_over_allocated_vars() {
    let mut s = solver_with(3, &[&[1]]);
    assert_eq!(s.solve(), SolveResult::Sat);
    for v in 1..=3 {
        assert!(s.model_value(lit(v)).is_some(), "x{v} must be assigned");
    }
}

#[test]
fn stats_accumulate() {
    let (nv, clauses) = pigeonhole(5);
    let mut s = Solver::new();
    s.ensure_vars(nv);
    for c in &clauses {
        s.add_clause(c.iter().copied());
    }
    assert_eq!(s.solve(), SolveResult::Unsat);
    let st = s.stats();
    assert!(st.conflicts > 0);
    assert!(st.decisions > 0);
    assert!(st.propagations > 0);
}

// ---------------------------------------------------------------------
// budgets
// ---------------------------------------------------------------------

#[test]
fn conflict_budget_reports_unknown() {
    let (nv, clauses) = pigeonhole(7);
    let mut s = Solver::new();
    s.ensure_vars(nv);
    for c in &clauses {
        s.add_clause(c.iter().copied());
    }
    s.set_conflict_budget(Some(5));
    assert_eq!(s.solve(), SolveResult::Unknown);
    // Remove the budget: solvable again.
    s.set_conflict_budget(None);
    assert_eq!(s.solve(), SolveResult::Unsat);
}

#[test]
fn effort_snapshots_are_monotone_across_solves() {
    // EffortStats is the budgeting currency of the deterministic Work
    // budgets: snapshots must only ever grow, call after call, so
    // `since` diffs charge each call's work exactly once.
    let (nv, clauses) = pigeonhole(6);
    let mut s = Solver::new();
    s.ensure_vars(nv);
    for c in &clauses {
        s.add_clause(c.iter().copied());
    }
    let mut prev = s.effort();
    assert_eq!(
        prev,
        EffortStats::default(),
        "fresh solver has spent nothing"
    );
    let mut total = EffortStats::default();
    for round in 0..4 {
        s.set_effort_budget(Some(3));
        let _ = s.solve();
        let now = s.effort();
        assert!(now.conflicts >= prev.conflicts, "round {round}: conflicts");
        assert!(now.decisions >= prev.decisions, "round {round}: decisions");
        assert!(
            now.propagations >= prev.propagations,
            "round {round}: propagations"
        );
        let delta = now.since(prev);
        assert!(delta.conflicts <= 3, "budget caps each call exactly");
        total += delta;
        prev = now;
    }
    assert_eq!(total, prev, "per-call deltas sum back to the snapshot");
    assert!(prev.conflicts > 0, "pigeonhole forces real conflicts");
}

#[test]
fn effort_budget_truncates_at_a_deterministic_point() {
    // Two identical solvers given the same budget must stop with
    // identical counters — the machine-independence Work budgets rely
    // on (a wall-clock deadline could never promise this).
    let (nv, clauses) = pigeonhole(7);
    let mk = || {
        let mut s = Solver::new();
        s.ensure_vars(nv);
        for c in &clauses {
            s.add_clause(c.iter().copied());
        }
        s.set_effort_budget(Some(11));
        assert_eq!(s.solve(), SolveResult::Unknown);
        s.effort()
    };
    assert_eq!(mk(), mk());
}

#[test]
fn deadline_in_past_reports_unknown() {
    let (nv, clauses) = pigeonhole(6);
    let mut s = Solver::new();
    s.ensure_vars(nv);
    for c in &clauses {
        s.add_clause(c.iter().copied());
    }
    s.set_deadline(Some(std::time::Instant::now()));
    assert_eq!(s.solve(), SolveResult::Unknown);
    s.set_deadline(None);
    assert_eq!(s.solve(), SolveResult::Unsat);
}

// ---------------------------------------------------------------------
// proof logging
// ---------------------------------------------------------------------

#[test]
fn proof_of_simple_unsat_checks() {
    let mut s = Solver::new();
    s.enable_proof();
    s.ensure_vars(2);
    s.add_clause([lit(1), lit(2)]);
    s.add_clause([lit(-1), lit(2)]);
    s.add_clause([lit(1), lit(-2)]);
    s.add_clause([lit(-1), lit(-2)]);
    assert_eq!(s.solve(), SolveResult::Unsat);
    let proof = s.proof().expect("proof enabled");
    let empty = proof.empty_clause().expect("refutation recorded");
    assert!(proof.steps()[empty as usize].lits().is_empty());
    assert!(proof.check(), "all chains must replay");
}

#[test]
fn proof_of_unit_conflict() {
    let mut s = Solver::new();
    s.enable_proof();
    s.ensure_vars(1);
    s.add_clause([lit(1)]);
    s.add_clause([lit(-1)]);
    assert!(!s.is_ok());
    let proof = s.proof().unwrap();
    assert!(proof.empty_clause().is_some());
    assert!(proof.check());
}

#[test]
fn proof_of_pigeonhole() {
    for n in 2..=4 {
        let (nv, clauses) = pigeonhole(n);
        let mut s = Solver::new();
        s.enable_proof();
        s.ensure_vars(nv);
        for c in &clauses {
            s.add_clause(c.iter().copied());
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
        let proof = s.proof().unwrap();
        assert!(proof.empty_clause().is_some(), "PHP({n}) refutation");
        assert!(proof.check(), "PHP({n}) proof must replay");
    }
}

#[test]
#[should_panic]
fn enable_proof_after_clauses_panics() {
    let mut s = solver_with(1, &[&[1]]);
    s.enable_proof();
}

#[test]
fn drat_output_ends_with_empty_clause() {
    let mut s = Solver::new();
    s.enable_proof();
    s.ensure_vars(2);
    s.add_clause([lit(1), lit(2)]);
    s.add_clause([lit(-1), lit(2)]);
    s.add_clause([lit(1), lit(-2)]);
    s.add_clause([lit(-1), lit(-2)]);
    assert_eq!(s.solve(), SolveResult::Unsat);
    let drat = s.proof().unwrap().to_drat();
    let lines: Vec<&str> = drat.lines().collect();
    assert!(!lines.is_empty());
    assert_eq!(
        *lines.last().unwrap(),
        "0",
        "refutation ends in the empty clause"
    );
    for line in &lines {
        assert!(
            line.ends_with('0'),
            "every DRAT line is 0-terminated: {line}"
        );
    }
}

// ---------------------------------------------------------------------
// modern-kernel determinism lockdown (EMA restarts, tiering,
// preprocessing)
// ---------------------------------------------------------------------

/// The heuristic knobs must not leak nondeterminism into the effort
/// currency: an exact-conflict-cap truncation under EMA restarts +
/// tiered clause management lands on identical verdicts and counters
/// run-to-run — with preprocessing opted out and opted in alike.
#[test]
fn ema_tiering_truncation_is_deterministic() {
    let (nv, clauses) = pigeonhole(7);
    for preprocess in [false, true] {
        let mk = || {
            let mut s = Solver::new();
            s.set_restart_policy(RestartPolicy::Ema);
            s.set_clause_db_policy(ClauseDbPolicy::Tiered);
            s.set_preprocess(preprocess);
            s.ensure_vars(nv);
            for c in &clauses {
                s.add_clause(c.iter().copied());
            }
            s.set_effort_budget(Some(40));
            let r = s.solve();
            (r, s.effort())
        };
        let (r1, e1) = mk();
        let (r2, e2) = mk();
        assert_eq!(r1, r2, "preprocess={preprocess}: verdicts");
        assert_eq!(e1, e2, "preprocess={preprocess}: EffortStats");
        assert!(
            e1.conflicts <= 40,
            "preprocess={preprocess}: the cap stays exact ({} conflicts)",
            e1.conflicts
        );
    }
}

/// Same lockdown on the SAT side: a satisfiable instance solved under
/// EMA + tiering + preprocessing yields the same model run-to-run.
#[test]
fn ema_with_preprocess_model_is_deterministic() {
    // A satisfiable formula with enough structure to learn from:
    // pigeonhole with as many holes as pigeons.
    let n = 5usize;
    let var = |p: usize, h: usize| lit((p * n + h + 1) as i64);
    let mk = || {
        let mut s = Solver::new();
        s.set_restart_policy(RestartPolicy::Ema);
        s.set_preprocess(true);
        s.ensure_vars(n * n);
        for p in 0..n {
            s.add_clause((0..n).map(|h| var(p, h)));
        }
        for h in 0..n {
            for p1 in 0..n {
                for p2 in p1 + 1..n {
                    s.add_clause([!var(p1, h), !var(p2, h)]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Sat);
        let model: Vec<Option<bool>> = (1..=(n * n) as i64)
            .map(|v| s.model_value(lit(v)))
            .collect();
        (model, s.effort())
    };
    assert_eq!(mk(), mk());
}

/// Preprocessing charges its work in conflict-equivalents, so even a
/// budget spent *entirely inside the pass* truncates exactly and
/// deterministically.
#[test]
fn preprocessing_effort_is_charged_and_capped() {
    let (nv, clauses) = pigeonhole(9);
    let mk = |budget| {
        let mut s = Solver::new();
        s.set_preprocess(true);
        s.ensure_vars(nv);
        for c in &clauses {
            s.add_clause(c.iter().copied());
        }
        s.set_effort_budget(Some(budget));
        let r = s.solve();
        (r, s.effort())
    };
    // A 1-conflict budget dies inside (or right after) the pass.
    let (r1, e1) = mk(1);
    assert_eq!(r1, SolveResult::Unknown);
    assert!(e1.conflicts >= 1, "the pass must charge effort");
    assert_eq!((r1, e1), mk(1), "truncation point is deterministic");
}

/// The Glucose LBD-recompute-on-use update: a learnt clause's LBD is
/// monotone non-increasing over its lifetime (it is only rewritten
/// when the recomputed value is smaller).
#[test]
fn learnt_lbd_is_monotone_non_increasing() {
    let (nv, clauses) = pigeonhole(7);
    let mut s = Solver::new();
    s.set_restart_policy(RestartPolicy::Ema);
    s.ensure_vars(nv);
    for c in &clauses {
        s.add_clause(c.iter().copied());
    }
    let mut snapshots: Vec<std::collections::HashMap<u32, u32>> = Vec::new();
    for _ in 0..6 {
        s.set_effort_budget(Some(25));
        if s.solve() != SolveResult::Unknown {
            break;
        }
        snapshots.push(s.learnt_lbds().into_iter().collect());
    }
    assert!(snapshots.len() >= 2, "need surviving learnts to compare");
    let mut compared = 0;
    for w in snapshots.windows(2) {
        for (cref, lbd_before) in &w[0] {
            if let Some(lbd_after) = w[1].get(cref) {
                compared += 1;
                assert!(
                    lbd_after <= lbd_before,
                    "clause {cref}: LBD rose {lbd_before} -> {lbd_after}"
                );
            }
        }
    }
    assert!(compared > 0, "no clause survived between snapshots");
}

/// The tiered reducer never deletes core-tier (LBD ≤ 2) or locked
/// clauses, and both DB policies agree on verdicts.
#[test]
fn db_policies_agree_on_verdicts() {
    let (nv, clauses) = pigeonhole(7);
    for policy in [ClauseDbPolicy::Tiered, ClauseDbPolicy::SortHalf] {
        let mut s = Solver::new();
        s.set_clause_db_policy(policy);
        s.ensure_vars(nv);
        for c in &clauses {
            s.add_clause(c.iter().copied());
        }
        assert_eq!(s.solve(), SolveResult::Unsat, "{policy:?}");
    }
}

/// The restart-policy and preprocessing knobs round-trip through their
/// string forms (the CLI surface).
#[test]
fn restart_policy_parses_and_displays() {
    assert_eq!("luby".parse::<RestartPolicy>(), Ok(RestartPolicy::Luby));
    assert_eq!("ema".parse::<RestartPolicy>(), Ok(RestartPolicy::Ema));
    assert!("glucose".parse::<RestartPolicy>().is_err());
    assert_eq!(RestartPolicy::Luby.to_string(), "luby");
    assert_eq!(RestartPolicy::Ema.to_string(), "ema");
    let mut s = Solver::new();
    assert_eq!(s.restart_policy(), RestartPolicy::Luby);
    s.set_restart_policy(RestartPolicy::Ema);
    assert_eq!(s.restart_policy(), RestartPolicy::Ema);
}

/// Incremental gating: with no new original clauses since the last
/// pass, an enabled preprocessor is skipped outright (the CEGAR
/// re-solve fast path) — observable as zero extra conflicts on an
/// immediate re-solve of a satisfiable formula.
#[test]
fn preprocess_skips_resolve_without_new_clauses() {
    let mut s = solver_with(4, &[&[1, 2], &[-1, 3], &[-2, 4], &[3, 4]]);
    s.set_preprocess(true);
    assert_eq!(s.solve(), SolveResult::Sat);
    let spent = s.effort();
    assert_eq!(s.solve(), SolveResult::Sat);
    assert_eq!(
        s.effort().since(spent).conflicts,
        0,
        "re-solve with no new clauses must not re-preprocess"
    );
}

/// `export_learnts` is a pure function of solver state: clauses come
/// out lit-sorted and (lbd, lits)-ordered, activities normalized to
/// the hottest variable, and a second export is byte-identical.
#[test]
fn export_learnts_is_deterministic_and_canonical() {
    let (nv, clauses) = pigeonhole(7);
    let mut s = Solver::new();
    s.ensure_vars(nv);
    for c in &clauses {
        s.add_clause(c.iter().copied());
    }
    assert_eq!(s.solve(), SolveResult::Unsat);
    let e1 = s.export_learnts(64, 16);
    let e2 = s.export_learnts(64, 16);
    assert_eq!(e1, e2, "same state, same snapshot");
    assert!(!e1.is_empty(), "php7 pins core-tier clauses");
    assert!(e1.num_clauses() <= 64 && e1.activities.len() <= 16);
    for c in &e1.clauses {
        assert!(c.windows(2).all(|w| w[0] <= w[1]), "lits sorted: {c:?}");
    }
    let acts = &e1.activities;
    assert_eq!(acts.first().map(|&(_, a)| a), Some(1.0), "normalized");
    assert!(acts.windows(2).all(|w| w[0].1 >= w[1].1), "hottest first");
}

/// A verbatim import into a twin solver (identical clause set) adds
/// only implied clauses: the verdict is unchanged and the recipient
/// reaches it — here, with the full UNSAT proof replaying.
#[test]
fn import_learnts_preserves_verdicts_and_proofs() {
    let (nv, clauses) = pigeonhole(6);
    let mut donor = Solver::new();
    donor.ensure_vars(nv);
    for c in &clauses {
        donor.add_clause(c.iter().copied());
    }
    assert_eq!(donor.solve(), SolveResult::Unsat);
    let export = donor.export_learnts(256, 64);
    assert!(!export.is_empty());

    let mut twin = Solver::new();
    twin.enable_proof();
    twin.ensure_vars(nv);
    for c in &clauses {
        twin.add_clause(c.iter().copied());
    }
    // The donor's lemma set for an UNSAT formula may propagate to a
    // root conflict mid-import, stopping the replay early — that is
    // the fast path, not a failure.
    let added = twin.import_learnts(&export);
    assert!(added > 0 && added <= export.num_clauses() as u64);
    assert_eq!(twin.solve(), SolveResult::Unsat);
    let proof = twin.proof().unwrap();
    assert!(proof.empty_clause().is_some());
    assert!(proof.check(), "proof must replay across imported lemmas");
}

/// Clauses over variables the recipient does not have are skipped, not
/// trusted; activity hints for unknown variables are ignored too.
#[test]
fn import_skips_out_of_range_variables() {
    let mut donor = solver_with(6, &[&[5, 6], &[-5, 6], &[5, -6], &[-5, -6], &[1, 2]]);
    assert_eq!(donor.solve(), SolveResult::Unsat);
    let export = donor.export_learnts(64, 16);
    let mut small = solver_with(2, &[&[1, 2]]);
    let added = small.import_learnts(&export);
    let in_range = export
        .clauses
        .iter()
        .filter(|c| c.iter().all(|l| l.var().index() < 2))
        .count() as u64;
    assert_eq!(added, in_range);
    assert_eq!(small.solve(), SolveResult::Sat);
}

/// Regression: an interior `import_learnts` between incremental calls
/// must clear the previous call's failed-assumption core (its literals
/// describe a pre-import trail) and must not trip the level-0
/// `add_clause` assertion — the failed-assumption return path now
/// unwinds the assumption levels before returning.
#[test]
fn interior_import_resets_failed_assumption_state() {
    let mut s = solver_with(3, &[&[-1, -2, -3]]);
    let assumptions = [lit(1), lit(2), lit(3)];
    assert_eq!(s.solve_with_assumptions(&assumptions), SolveResult::Unsat);
    assert!(!s.failed_assumptions().is_empty(), "a core was extracted");

    // Adding clauses right after an assumption-UNSAT must work (the
    // solver is back at level 0, stale propagations unwound).
    let mut unit = crate::LearntExport::default();
    unit.clauses.push(vec![lit(-1)]);
    assert_eq!(s.import_learnts(&unit), 1);
    assert!(
        s.failed_assumptions().is_empty(),
        "pre-import core must not survive the import"
    );

    // Re-solving now fails on the first assumption alone: ¬x1 is
    // level-0 implied, so the minimal core is exactly [x1] — not the
    // stale three-literal core of the pre-import trail.
    assert_eq!(s.solve_with_assumptions(&assumptions), SolveResult::Unsat);
    assert_eq!(s.failed_assumptions(), &[lit(1)]);
}

/// Seeding a budget-truncated twin with donor clauses only ever helps:
/// the seeded solver needs no more conflicts than the cold one to
/// reach the same verdict on an identical formula.
#[test]
fn seeded_resolve_spends_no_more_conflicts() {
    let (nv, clauses) = pigeonhole(7);
    let mut donor = Solver::new();
    donor.ensure_vars(nv);
    for c in &clauses {
        donor.add_clause(c.iter().copied());
    }
    assert_eq!(donor.solve(), SolveResult::Unsat);
    let cold = donor.effort().conflicts;
    let export = donor.export_learnts(512, 128);

    let mut seeded = Solver::new();
    seeded.ensure_vars(nv);
    for c in &clauses {
        seeded.add_clause(c.iter().copied());
    }
    seeded.import_learnts(&export);
    let before = seeded.effort();
    assert_eq!(seeded.solve(), SolveResult::Unsat);
    let warm = seeded.effort().since(before).conflicts;
    assert!(
        warm <= cold,
        "seeded solve took {warm} conflicts vs {cold} cold"
    );
}

// ---------------------------------------------------------------------
// randomized cross-checking
// ---------------------------------------------------------------------

mod props {
    use super::*;
    use proptest::prelude::*;

    fn arb_clauses(nvars: usize) -> impl Strategy<Value = Vec<Vec<Lit>>> {
        let clause = proptest::collection::vec(
            (0..nvars, proptest::bool::ANY).prop_map(|(v, neg)| Lit::new(Var::new(v), neg)),
            1..4,
        );
        proptest::collection::vec(clause, 1..40)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn matches_brute_force(clauses in arb_clauses(8)) {
            let want = brute_force_sat(8, &clauses);
            let mut s = Solver::new();
            s.ensure_vars(8);
            for c in &clauses {
                s.add_clause(c.iter().copied());
            }
            let got = s.solve();
            prop_assert_eq!(
                got,
                if want { SolveResult::Sat } else { SolveResult::Unsat }
            );
            if got == SolveResult::Sat {
                let m = s.model();
                for c in &clauses {
                    prop_assert!(c.iter().any(|l| l.eval(&m)), "model violates {c:?}");
                }
            }
        }

        #[test]
        fn unsat_proofs_replay(clauses in arb_clauses(6)) {
            if !brute_force_sat(6, &clauses) {
                let mut s = Solver::new();
                s.enable_proof();
                s.ensure_vars(6);
                for c in &clauses {
                    s.add_clause(c.iter().copied());
                }
                prop_assert_eq!(s.solve(), SolveResult::Unsat);
                let proof = s.proof().unwrap();
                prop_assert!(proof.empty_clause().is_some());
                prop_assert!(proof.check());
            }
        }

        #[test]
        fn cores_are_sound(clauses in arb_clauses(6), n_assume in 1usize..5) {
            let mut s = Solver::new();
            s.ensure_vars(6);
            for c in &clauses {
                s.add_clause(c.iter().copied());
            }
            let assumptions: Vec<Lit> =
                (0..n_assume).map(|i| Lit::new(Var::new(i), i % 2 == 0)).collect();
            if s.solve_with_assumptions(&assumptions) == SolveResult::Unsat {
                let core = s.failed_assumptions().to_vec();
                for l in &core {
                    prop_assert!(assumptions.contains(l), "core lit {l} not assumed");
                }
                // Core assumptions alone must still be UNSAT.
                prop_assert_eq!(s.solve_with_assumptions(&core), SolveResult::Unsat);
            }
        }

        #[test]
        fn incremental_equals_oneshot(clauses in arb_clauses(7)) {
            // Adding clauses one by one with solves in between must agree
            // with a fresh solver at every step.
            let mut inc = Solver::new();
            inc.ensure_vars(7);
            for (i, c) in clauses.iter().enumerate() {
                inc.add_clause(c.iter().copied());
                if i % 3 == 0 {
                    let want = brute_force_sat(7, &clauses[..=i]);
                    let got = inc.solve();
                    prop_assert_eq!(
                        got,
                        if want { SolveResult::Sat } else { SolveResult::Unsat },
                        "step {}", i
                    );
                }
            }
        }
    }
}
