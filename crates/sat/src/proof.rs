//! Resolution proof logging.
//!
//! When enabled with [`crate::Solver::enable_proof`], the solver records
//! every original clause and, for every learnt clause, the *trivial
//! resolution chain* that derives it (the sequence of reason clauses
//! resolved during first-UIP conflict analysis, extended with the
//! level-0 unit resolutions that conflict analysis performs
//! implicitly). A refutation ends with a derivation of the empty
//! clause, from which `step-itp` computes Craig interpolants.

use step_cnf::{Lit, Var};

/// Identifier of a clause inside a [`Proof`] (index into the steps).
pub type ClauseId = u32;

/// One step of a resolution proof.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProofStep {
    /// A clause added by the user through `add_clause`.
    Original {
        /// The clause literals as given (after de-duplication).
        lits: Vec<Lit>,
    },
    /// A clause derived by a trivial resolution chain: starting from
    /// clause `start`, resolve successively with each `(pivot, clause)`
    /// in order. The result is `lits`.
    Chain {
        /// The derived clause (empty for the final refutation step).
        lits: Vec<Lit>,
        /// The first antecedent.
        start: ClauseId,
        /// Pivoted resolutions applied in order.
        resolutions: Vec<(Var, ClauseId)>,
    },
}

impl ProofStep {
    /// The literals of the clause this step derives or introduces.
    pub fn lits(&self) -> &[Lit] {
        match self {
            ProofStep::Original { lits } => lits,
            ProofStep::Chain { lits, .. } => lits,
        }
    }
}

/// A logged resolution proof.
#[derive(Clone, Debug, Default)]
pub struct Proof {
    steps: Vec<ProofStep>,
    empty: Option<ClauseId>,
}

impl Proof {
    pub(crate) fn new() -> Self {
        Proof::default()
    }

    pub(crate) fn push(&mut self, step: ProofStep) -> ClauseId {
        let id = self.steps.len() as ClauseId;
        if step.lits().is_empty() {
            self.empty.get_or_insert(id);
        }
        self.steps.push(step);
        id
    }

    /// All proof steps; a step's [`ClauseId`] is its index here.
    pub fn steps(&self) -> &[ProofStep] {
        &self.steps
    }

    /// The step deriving (or stating) the empty clause, if the solver
    /// concluded UNSAT with proof logging on.
    pub fn empty_clause(&self) -> Option<ClauseId> {
        self.empty
    }

    /// Replays the chain of step `id` and checks it derives exactly the
    /// recorded literals. Returns `false` on any mismatch — a debugging
    /// aid used heavily in tests.
    pub fn check_step(&self, id: ClauseId) -> bool {
        match &self.steps[id as usize] {
            ProofStep::Original { .. } => true,
            ProofStep::Chain {
                lits,
                start,
                resolutions,
            } => {
                let mut cur: Vec<Lit> = self.steps[*start as usize].lits().to_vec();
                for &(pivot, cid) in resolutions {
                    let other = self.steps[cid as usize].lits();
                    let pos = Lit::pos(pivot);
                    let neg = Lit::neg(pivot);
                    let cur_has_pos = cur.contains(&pos);
                    let cur_has_neg = cur.contains(&neg);
                    let oth_has_pos = other.contains(&pos);
                    let oth_has_neg = other.contains(&neg);
                    let ok = (cur_has_pos && oth_has_neg) || (cur_has_neg && oth_has_pos);
                    if !ok {
                        return false;
                    }
                    let mut next: Vec<Lit> =
                        cur.iter().copied().filter(|l| l.var() != pivot).collect();
                    for &l in other {
                        if l.var() != pivot && !next.contains(&l) {
                            next.push(l);
                        }
                    }
                    cur = next;
                }
                let mut a = cur;
                let mut b = lits.clone();
                a.sort_unstable();
                a.dedup();
                b.sort_unstable();
                b.dedup();
                a == b
            }
        }
    }

    /// Replays every step; `true` iff the whole proof is well-formed.
    pub fn check(&self) -> bool {
        (0..self.steps.len() as ClauseId).all(|id| self.check_step(id))
    }

    /// Emits the derived clauses in DRAT format (each learnt clause in
    /// derivation order, `0`-terminated; the final line is the empty
    /// clause for refutations). Chains are RUP steps, so the output is
    /// checkable by standard DRAT checkers.
    pub fn to_drat(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for step in &self.steps {
            if let ProofStep::Chain { lits, .. } = step {
                for l in lits {
                    let _ = write!(out, "{} ", l.to_dimacs());
                }
                let _ = writeln!(out, "0");
            }
        }
        out
    }
}
