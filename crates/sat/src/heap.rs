//! Max-heap over variables ordered by VSIDS activity.

use step_cnf::Var;

/// Binary max-heap keyed by an external activity array.
#[derive(Default, Debug, Clone)]
pub(crate) struct VarHeap {
    heap: Vec<u32>,
    /// position of var in `heap`, or `u32::MAX` when absent
    index: Vec<u32>,
}

const ABSENT: u32 = u32::MAX;

impl VarHeap {
    pub fn new() -> Self {
        VarHeap::default()
    }

    pub fn grow(&mut self, num_vars: usize) {
        self.index.resize(num_vars, ABSENT);
    }

    pub fn contains(&self, v: Var) -> bool {
        self.index[v.index()] != ABSENT
    }

    pub fn insert(&mut self, v: Var, act: &[f64]) {
        if self.contains(v) {
            return;
        }
        let i = self.heap.len();
        self.heap.push(v.index() as u32);
        self.index[v.index()] = i as u32;
        self.sift_up(i, act);
    }

    pub fn pop(&mut self, act: &[f64]) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        let last = self.heap.pop().expect("non-empty");
        self.index[top as usize] = ABSENT;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.index[last as usize] = 0;
            self.sift_down(0, act);
        }
        Some(Var::new(top as usize))
    }

    /// Restores heap order for `v` after its activity increased.
    pub fn decrease_key(&mut self, v: Var, act: &[f64]) {
        let i = self.index[v.index()];
        if i != ABSENT {
            self.sift_up(i as usize, act);
        }
    }

    fn sift_up(&mut self, mut i: usize, act: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if act[self.heap[i] as usize] <= act[self.heap[parent] as usize] {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize, act: &[f64]) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len() && act[self.heap[l] as usize] > act[self.heap[best] as usize] {
                best = l;
            }
            if r < self.heap.len() && act[self.heap[r] as usize] > act[self.heap[best] as usize] {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.index[self.heap[i] as usize] = i as u32;
        self.index[self.heap[j] as usize] = j as u32;
    }
}
