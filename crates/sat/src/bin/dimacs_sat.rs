//! Minimal DIMACS front-end for the CDCL solver: reads a CNF file (or
//! stdin with `-`), prints `s SATISFIABLE` + a `v` model line or
//! `s UNSATISFIABLE`, optionally emitting a DRAT proof.
//!
//! Usage: `dimacs_sat <file.cnf|-> [--drat <out.drat>] [--conflicts n]`

use std::io::Read;

use step_cnf::{parse_dimacs, Lit, Var};
use step_sat::{SolveResult, Solver};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path = None;
    let mut drat_out = None;
    let mut conflicts = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--drat" => {
                i += 1;
                drat_out = args.get(i).cloned();
            }
            "--conflicts" => {
                i += 1;
                match args.get(i).map(|s| s.parse::<u64>()) {
                    Some(Ok(n)) => conflicts = Some(n),
                    _ => {
                        eprintln!(
                            "--conflicts needs a non-negative integer, got {:?}",
                            args.get(i).map(String::as_str).unwrap_or("<missing>")
                        );
                        eprintln!("usage: dimacs_sat <file.cnf|-> [--drat out] [--conflicts n]");
                        std::process::exit(2);
                    }
                }
            }
            p if path.is_none() => path = Some(p.to_owned()),
            _ => {
                eprintln!("usage: dimacs_sat <file.cnf|-> [--drat out] [--conflicts n]");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let Some(path) = path else {
        eprintln!("usage: dimacs_sat <file.cnf|-> [--drat out] [--conflicts n]");
        std::process::exit(2);
    };
    let text = if path == "-" {
        let mut s = String::new();
        std::io::stdin().read_to_string(&mut s).expect("read stdin");
        s
    } else {
        std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        })
    };
    let cnf = parse_dimacs(&text).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
    let mut solver = Solver::new();
    if drat_out.is_some() {
        solver.enable_proof();
    }
    solver.set_conflict_budget(conflicts);
    solver.add_cnf(&cnf);
    match solver.solve() {
        SolveResult::Sat => {
            println!("s SATISFIABLE");
            let mut line = String::from("v");
            for v in 0..cnf.num_vars() {
                let lit = Lit::pos(Var::new(v));
                let val = solver.model_value(lit).unwrap_or(false);
                line.push_str(&format!(
                    " {}",
                    if val { v as i64 + 1 } else { -(v as i64 + 1) }
                ));
            }
            line.push_str(" 0");
            println!("{line}");
            std::process::exit(10);
        }
        SolveResult::Unsat => {
            println!("s UNSATISFIABLE");
            if let (Some(out), Some(proof)) = (drat_out, solver.proof()) {
                std::fs::write(&out, proof.to_drat()).unwrap_or_else(|e| {
                    eprintln!("cannot write {out}: {e}");
                    std::process::exit(1);
                });
                eprintln!("c drat proof written to {out}");
            }
            std::process::exit(20);
        }
        SolveResult::Unknown => {
            println!("s UNKNOWN");
            std::process::exit(0);
        }
    }
}
