//! Reduced Ordered Binary Decision Diagrams (ROBDDs).
//!
//! BDDs are the classical substrate of pre-SAT bi-decomposition (the
//! paper's related work: Mishchenko et al. DAC'01, Cortadella TCAD'03,
//! …). This crate provides a compact ROBDD manager used two ways in
//! this reproduction:
//!
//! * as an **independent verification oracle**: decompositions computed
//!   by the SAT/QBF engines are re-checked by canonical BDD equality on
//!   small cones;
//! * as the **related-work baseline**: [`Manager::or_decomposable`]
//!   implements the textbook quantification-based decomposability test
//!   that BDD-based tools rely on.
//!
//! Nodes are hash-consed (a unique table) and `ite` is memoized, so
//! equality of functions is pointer equality of [`BddRef`]s.
//!
//! # Example
//!
//! ```
//! use step_bdd::Manager;
//!
//! let mut m = Manager::new(2);
//! let x = m.var(0);
//! let y = m.var(1);
//! let f = m.and(x, y);
//! let g = m.or(x, y);
//! assert_ne!(f, g);
//! let h = m.and(g, f);
//! assert_eq!(h, f, "(x∨y)∧(x∧y) = x∧y — canonical form");
//! ```

use std::collections::HashMap;

use step_aig::{Aig, AigLit, AigNode};

/// A reference to a BDD node inside a [`Manager`]. Equal functions have
/// equal references (canonicity).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct BddRef(u32);

impl BddRef {
    /// The constant-false function.
    pub const ZERO: BddRef = BddRef(0);
    /// The constant-true function.
    pub const ONE: BddRef = BddRef(1);

    /// Whether this reference is one of the constants.
    pub fn is_const(self) -> bool {
        self.0 < 2
    }
}

#[derive(Clone, Copy, Debug)]
struct Node {
    var: u32,
    lo: BddRef,
    hi: BddRef,
}

/// A ROBDD manager with a fixed variable order `0 < 1 < … < n-1`.
#[derive(Debug, Default)]
pub struct Manager {
    nodes: Vec<Node>,
    unique: HashMap<(u32, BddRef, BddRef), BddRef>,
    ite_cache: HashMap<(BddRef, BddRef, BddRef), BddRef>,
    num_vars: usize,
}

impl Manager {
    /// Creates a manager over `num_vars` variables.
    pub fn new(num_vars: usize) -> Self {
        let mut m = Manager {
            nodes: Vec::new(),
            unique: HashMap::new(),
            ite_cache: HashMap::new(),
            num_vars,
        };
        // Index 0/1 are the constants (var = sentinel past all vars).
        m.nodes.push(Node {
            var: u32::MAX,
            lo: BddRef::ZERO,
            hi: BddRef::ZERO,
        });
        m.nodes.push(Node {
            var: u32::MAX,
            lo: BddRef::ONE,
            hi: BddRef::ONE,
        });
        m
    }

    /// Number of variables in the order.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of allocated nodes (including the two constants).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The projection function of variable `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= self.num_vars()`.
    pub fn var(&mut self, v: usize) -> BddRef {
        assert!(v < self.num_vars, "variable {v} out of order range");
        self.mk(v as u32, BddRef::ZERO, BddRef::ONE)
    }

    fn mk(&mut self, var: u32, lo: BddRef, hi: BddRef) -> BddRef {
        if lo == hi {
            return lo;
        }
        if let Some(&r) = self.unique.get(&(var, lo, hi)) {
            return r;
        }
        let r = BddRef(self.nodes.len() as u32);
        self.nodes.push(Node { var, lo, hi });
        self.unique.insert((var, lo, hi), r);
        r
    }

    fn var_of(&self, r: BddRef) -> u32 {
        self.nodes[r.0 as usize].var
    }

    /// If-then-else: `if f then g else h` (the universal connective).
    pub fn ite(&mut self, f: BddRef, g: BddRef, h: BddRef) -> BddRef {
        // Terminal cases.
        if f == BddRef::ONE {
            return g;
        }
        if f == BddRef::ZERO {
            return h;
        }
        if g == h {
            return g;
        }
        if g == BddRef::ONE && h == BddRef::ZERO {
            return f;
        }
        if let Some(&r) = self.ite_cache.get(&(f, g, h)) {
            return r;
        }
        let top = self.var_of(f).min(self.var_of(g)).min(self.var_of(h));
        let (f0, f1) = self.cofactors_at(f, top);
        let (g0, g1) = self.cofactors_at(g, top);
        let (h0, h1) = self.cofactors_at(h, top);
        let lo = self.ite(f0, g0, h0);
        let hi = self.ite(f1, g1, h1);
        let r = self.mk(top, lo, hi);
        self.ite_cache.insert((f, g, h), r);
        r
    }

    fn cofactors_at(&self, f: BddRef, var: u32) -> (BddRef, BddRef) {
        let n = self.nodes[f.0 as usize];
        if n.var == var {
            (n.lo, n.hi)
        } else {
            (f, f)
        }
    }

    /// Negation.
    pub fn not(&mut self, f: BddRef) -> BddRef {
        self.ite(f, BddRef::ZERO, BddRef::ONE)
    }

    /// Conjunction.
    pub fn and(&mut self, f: BddRef, g: BddRef) -> BddRef {
        self.ite(f, g, BddRef::ZERO)
    }

    /// Disjunction.
    pub fn or(&mut self, f: BddRef, g: BddRef) -> BddRef {
        self.ite(f, BddRef::ONE, g)
    }

    /// Exclusive or.
    pub fn xor(&mut self, f: BddRef, g: BddRef) -> BddRef {
        let ng = self.not(g);
        self.ite(f, ng, g)
    }

    /// Restriction `f[var := value]` (cofactor).
    pub fn restrict(&mut self, f: BddRef, var: usize, value: bool) -> BddRef {
        if f.is_const() {
            return f;
        }
        let n = self.nodes[f.0 as usize];
        match (n.var as usize).cmp(&var) {
            std::cmp::Ordering::Greater => f,
            std::cmp::Ordering::Equal => {
                if value {
                    n.hi
                } else {
                    n.lo
                }
            }
            std::cmp::Ordering::Less => {
                let lo = self.restrict(n.lo, var, value);
                let hi = self.restrict(n.hi, var, value);
                self.mk(n.var, lo, hi)
            }
        }
    }

    /// Existential quantification over `vars`.
    pub fn exists(&mut self, f: BddRef, vars: &[usize]) -> BddRef {
        let mut cur = f;
        for &v in vars {
            let lo = self.restrict(cur, v, false);
            let hi = self.restrict(cur, v, true);
            cur = self.or(lo, hi);
        }
        cur
    }

    /// Universal quantification over `vars`.
    pub fn forall(&mut self, f: BddRef, vars: &[usize]) -> BddRef {
        let mut cur = f;
        for &v in vars {
            let lo = self.restrict(cur, v, false);
            let hi = self.restrict(cur, v, true);
            cur = self.and(lo, hi);
        }
        cur
    }

    /// Evaluates `f` under a full assignment.
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() < self.num_vars()`.
    pub fn eval(&self, f: BddRef, assignment: &[bool]) -> bool {
        assert!(assignment.len() >= self.num_vars, "assignment too short");
        let mut cur = f;
        while !cur.is_const() {
            let n = self.nodes[cur.0 as usize];
            cur = if assignment[n.var as usize] {
                n.hi
            } else {
                n.lo
            };
        }
        cur == BddRef::ONE
    }

    /// The structural support of `f` (sorted variable indices).
    pub fn support(&self, f: BddRef) -> Vec<usize> {
        let mut seen = std::collections::HashSet::new();
        let mut visited = std::collections::HashSet::new();
        let mut stack = vec![f];
        while let Some(r) = stack.pop() {
            if r.is_const() || !visited.insert(r) {
                continue;
            }
            let n = self.nodes[r.0 as usize];
            seen.insert(n.var as usize);
            stack.push(n.lo);
            stack.push(n.hi);
        }
        let mut v: Vec<usize> = seen.into_iter().collect();
        v.sort_unstable();
        v
    }

    /// Number of satisfying assignments of `f` over all
    /// `self.num_vars()` variables.
    pub fn sat_count(&self, f: BddRef) -> u64 {
        let mut memo: HashMap<BddRef, u64> = HashMap::new();
        self.sat_count_rec(f, 0, &mut memo)
    }

    fn sat_count_rec(&self, f: BddRef, _from: u32, memo: &mut HashMap<BddRef, u64>) -> u64 {
        // Count over the full variable set by scaling per skipped level.
        fn rec(m: &Manager, f: BddRef, memo: &mut HashMap<BddRef, u64>) -> (u64, u32) {
            // Returns (count below this node, var index of node or n).
            let var = if f.is_const() {
                m.num_vars as u32
            } else {
                m.var_of(f)
            };
            if f == BddRef::ZERO {
                return (0, var);
            }
            if f == BddRef::ONE {
                return (1, var);
            }
            if let Some(&c) = memo.get(&f) {
                return (c, var);
            }
            let n = m.nodes[f.0 as usize];
            let (clo, vlo) = rec(m, n.lo, memo);
            let (chi, vhi) = rec(m, n.hi, memo);
            let c = clo * (1u64 << (vlo - var - 1)) + chi * (1u64 << (vhi - var - 1));
            memo.insert(f, c);
            (c, var)
        }
        let (c, var) = rec(self, f, memo);
        c * (1u64 << var)
    }

    /// Builds the BDD of `root` in `aig`, mapping AIG primary input `i`
    /// to BDD variable `i`.
    ///
    /// # Panics
    ///
    /// Panics if the AIG has more inputs than the manager has variables
    /// or contains latch leaves.
    pub fn from_aig(&mut self, aig: &Aig, root: AigLit) -> BddRef {
        assert!(
            aig.num_inputs() <= self.num_vars,
            "manager too small for AIG inputs"
        );
        let mut memo: Vec<Option<BddRef>> = vec![None; aig.node_count()];
        let mut stack = vec![root.node()];
        while let Some(&id) = stack.last() {
            if memo[id.index()].is_some() {
                stack.pop();
                continue;
            }
            match aig.node(id) {
                AigNode::Const => {
                    memo[id.index()] = Some(BddRef::ZERO);
                    stack.pop();
                }
                AigNode::Input { pi } => {
                    let b = self.var(pi as usize);
                    memo[id.index()] = Some(b);
                    stack.pop();
                }
                AigNode::Latch { .. } => panic!("latch leaf in from_aig; run comb() first"),
                AigNode::And { f0, f1 } => {
                    let m0 = memo[f0.node().index()];
                    let m1 = memo[f1.node().index()];
                    match (m0, m1) {
                        (Some(a), Some(b)) => {
                            let a = if f0.is_complement() { self.not(a) } else { a };
                            let b = if f1.is_complement() { self.not(b) } else { b };
                            let v = self.and(a, b);
                            memo[id.index()] = Some(v);
                            stack.pop();
                        }
                        _ => {
                            if m0.is_none() {
                                stack.push(f0.node());
                            }
                            if m1.is_none() {
                                stack.push(f1.node());
                            }
                        }
                    }
                }
            }
        }
        let r = memo[root.node().index()].expect("computed");
        if root.is_complement() {
            self.not(r)
        } else {
            r
        }
    }

    /// The quantification-based OR bi-decomposability test of the
    /// BDD literature: `f = (∀XB.f) ∨ (∀XA.f)` holds iff `f` is OR
    /// bi-decomposable with partition `{XA | XB | XC}` (Proposition 1
    /// of the paper, in BDD form). Returns the canonical pair when
    /// decomposable.
    pub fn or_decomposable(
        &mut self,
        f: BddRef,
        xa: &[usize],
        xb: &[usize],
    ) -> Option<(BddRef, BddRef)> {
        let fa = self.forall(f, xb);
        let fb = self.forall(f, xa);
        let cover = self.or(fa, fb);
        if cover == f {
            Some((fa, fb))
        } else {
            None
        }
    }

    /// AND-dual of [`Manager::or_decomposable`].
    pub fn and_decomposable(
        &mut self,
        f: BddRef,
        xa: &[usize],
        xb: &[usize],
    ) -> Option<(BddRef, BddRef)> {
        let nf = self.not(f);
        let (ga, gb) = self.or_decomposable(nf, xa, xb)?;
        Some((self.not(ga), self.not(gb)))
    }

    /// XOR bi-decomposability via cofactor construction: decomposable
    /// iff `fA(XA,XC) := f|XB=0` and `fB(XB,XC) := f|XA=0 ⊕ f|XA=0,XB=0`
    /// satisfy `f = fA ⊕ fB`.
    pub fn xor_decomposable(
        &mut self,
        f: BddRef,
        xa: &[usize],
        xb: &[usize],
    ) -> Option<(BddRef, BddRef)> {
        let mut fa = f;
        for &v in xb {
            fa = self.restrict(fa, v, false);
        }
        let mut f_a0 = f;
        for &v in xa {
            f_a0 = self.restrict(f_a0, v, false);
        }
        let mut f_ab0 = f_a0;
        for &v in xb {
            f_ab0 = self.restrict(f_ab0, v, false);
        }
        let fb = self.xor(f_a0, f_ab0);
        let rebuilt = self.xor(fa, fb);
        if rebuilt == f {
            Some((fa, fb))
        } else {
            None
        }
    }

    /// Number of internal (non-constant) nodes reachable from `f` —
    /// the classical BDD size measure `|f|`.
    pub fn size(&self, f: BddRef) -> usize {
        let mut visited = std::collections::HashSet::new();
        let mut stack = vec![f];
        let mut count = 0;
        while let Some(r) = stack.pop() {
            if r.is_const() || !visited.insert(r) {
                continue;
            }
            count += 1;
            let n = self.nodes[r.0 as usize];
            stack.push(n.lo);
            stack.push(n.hi);
        }
        count
    }

    /// Rebuilds `f` as an AIG multiplexer network inside `dst`,
    /// driving BDD variable `v` from `inputs[v]`. Each reachable BDD
    /// node becomes one shared [`Aig::mux`], so the export carries the
    /// BDD's canonical sharing into the AIG (at most `3·|f|` AND
    /// nodes) — this is both the terminal-fallback path of the
    /// synthesis driver and the related-work area baseline.
    ///
    /// # Panics
    ///
    /// Panics if the support of `f` reaches past `inputs.len()`.
    pub fn export_aig(&self, f: BddRef, dst: &mut Aig, inputs: &[AigLit]) -> AigLit {
        let mut memo: HashMap<BddRef, AigLit> = HashMap::new();
        memo.insert(BddRef::ZERO, AigLit::FALSE);
        memo.insert(BddRef::ONE, AigLit::TRUE);
        let mut stack = vec![f];
        while let Some(&r) = stack.last() {
            if memo.contains_key(&r) {
                stack.pop();
                continue;
            }
            let n = self.nodes[r.0 as usize];
            match (memo.get(&n.lo).copied(), memo.get(&n.hi).copied()) {
                (Some(lo), Some(hi)) => {
                    let v = dst.mux(inputs[n.var as usize], hi, lo);
                    memo.insert(r, v);
                    stack.pop();
                }
                (lo, hi) => {
                    if lo.is_none() {
                        stack.push(n.lo);
                    }
                    if hi.is_none() {
                        stack.push(n.hi);
                    }
                }
            }
        }
        memo[&f]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_inputs(n: usize) -> impl Iterator<Item = Vec<bool>> {
        (0..1usize << n).map(move |m| (0..n).map(|i| m >> i & 1 == 1).collect())
    }

    #[test]
    fn constants_and_vars() {
        let mut m = Manager::new(2);
        assert!(m.eval(BddRef::ONE, &[false, false]));
        assert!(!m.eval(BddRef::ZERO, &[true, true]));
        let x = m.var(0);
        assert!(m.eval(x, &[true, false]));
        assert!(!m.eval(x, &[false, true]));
    }

    #[test]
    fn canonicity() {
        let mut m = Manager::new(3);
        let x = m.var(0);
        let y = m.var(1);
        // x ∧ y built two different ways.
        let a = m.and(x, y);
        let ny = m.not(y);
        let o = m.or(ny, x);
        let b = m.and(y, o); // y ∧ (¬y ∨ x) = x ∧ y
        assert_eq!(a, b);
        // Idempotence and double negation.
        assert_eq!(m.and(a, a), a);
        let na = m.not(a);
        assert_eq!(m.not(na), a);
    }

    #[test]
    fn ops_match_truth_tables() {
        let mut m = Manager::new(3);
        let x = m.var(0);
        let y = m.var(1);
        let z = m.var(2);
        let xy = m.and(x, y);
        let f = m.xor(xy, z);
        for v in all_inputs(3) {
            assert_eq!(m.eval(f, &v), (v[0] && v[1]) ^ v[2]);
        }
    }

    #[test]
    fn restrict_and_quantify() {
        let mut m = Manager::new(3);
        let x = m.var(0);
        let y = m.var(1);
        let f = m.and(x, y);
        let f_y1 = m.restrict(f, 1, true);
        assert_eq!(f_y1, x);
        let f_y0 = m.restrict(f, 1, false);
        assert_eq!(f_y0, BddRef::ZERO);
        let ex = m.exists(f, &[1]);
        assert_eq!(ex, x);
        let fa = m.forall(f, &[1]);
        assert_eq!(fa, BddRef::ZERO);
        let o = m.or(x, y);
        let fo = m.forall(o, &[1]);
        assert_eq!(fo, x);
    }

    #[test]
    fn support_and_sat_count() {
        let mut m = Manager::new(4);
        let x = m.var(0);
        let z = m.var(2);
        let f = m.and(x, z);
        assert_eq!(m.support(f), vec![0, 2]);
        // x ∧ z over 4 vars: 2^2 models.
        assert_eq!(m.sat_count(f), 4);
        assert_eq!(m.sat_count(BddRef::ONE), 16);
        assert_eq!(m.sat_count(BddRef::ZERO), 0);
        let o = m.or(x, z);
        assert_eq!(m.sat_count(o), 12);
    }

    #[test]
    fn from_aig_agrees_with_eval() {
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let t = aig.xor(a, b);
        let f = aig.mux(c, t, a);
        let mut m = Manager::new(3);
        let bf = m.from_aig(&aig, f);
        for v in all_inputs(3) {
            assert_eq!(m.eval(bf, &v), aig.eval_lit(f, &v), "at {v:?}");
        }
    }

    #[test]
    fn or_decomposability() {
        // f = (x0 ∧ x1) ∨ (x2 ∧ x3): disjointly OR-decomposable.
        let mut m = Manager::new(4);
        let x0 = m.var(0);
        let x1 = m.var(1);
        let x2 = m.var(2);
        let x3 = m.var(3);
        let l = m.and(x0, x1);
        let r = m.and(x2, x3);
        let f = m.or(l, r);
        let (fa, fb) = m
            .or_decomposable(f, &[0, 1], &[2, 3])
            .expect("decomposable");
        assert_eq!(fa, l);
        assert_eq!(fb, r);
        // XOR function is not OR-decomposable.
        let g = m.xor(x0, x1);
        assert!(m.or_decomposable(g, &[0], &[1]).is_none());
    }

    #[test]
    fn and_decomposability() {
        let mut m = Manager::new(2);
        let x0 = m.var(0);
        let x1 = m.var(1);
        let f = m.and(x0, x1);
        let (fa, fb) = m.and_decomposable(f, &[0], &[1]).expect("decomposable");
        assert_eq!(fa, x0);
        assert_eq!(fb, x1);
    }

    #[test]
    fn xor_decomposability() {
        let mut m = Manager::new(3);
        let x0 = m.var(0);
        let x1 = m.var(1);
        let x2 = m.var(2);
        let a = m.xor(x0, x1);
        let f = m.xor(a, x2);
        let (fa, fb) = m.xor_decomposable(f, &[0, 1], &[2]).expect("decomposable");
        for v in all_inputs(3) {
            assert_eq!(m.eval(fa, &v) ^ m.eval(fb, &v), m.eval(f, &v));
        }
        // Majority is not XOR-decomposable.
        let ab = m.and(x0, x1);
        let ac = m.and(x0, x2);
        let bc = m.and(x1, x2);
        let t = m.or(ab, ac);
        let maj = m.or(t, bc);
        assert!(m.xor_decomposable(maj, &[0], &[1, 2]).is_none());
    }

    #[test]
    fn size_counts_internal_nodes() {
        let mut m = Manager::new(3);
        assert_eq!(m.size(BddRef::ZERO), 0);
        assert_eq!(m.size(BddRef::ONE), 0);
        let x = m.var(0);
        assert_eq!(m.size(x), 1);
        let y = m.var(1);
        let z = m.var(2);
        let xy = m.and(x, y);
        let f = m.xor(xy, z);
        // x → y → z chain plus the low-branch z node.
        assert!(m.size(f) >= 3);
    }

    #[test]
    fn export_aig_round_trips() {
        let mut m = Manager::new(4);
        let x = m.var(0);
        let y = m.var(1);
        let z = m.var(2);
        let w = m.var(3);
        let xy = m.and(x, y);
        let zw = m.xor(z, w);
        let f = m.or(xy, zw);
        let mut aig = Aig::new();
        let ins: Vec<AigLit> = (0..4).map(|i| aig.add_input(format!("x{i}"))).collect();
        let lit = m.export_aig(f, &mut aig, &ins);
        for v in all_inputs(4) {
            assert_eq!(aig.eval_lit(lit, &v), m.eval(f, &v));
        }
        // Constants export to constant literals.
        let t = m.export_aig(BddRef::ONE, &mut aig, &ins);
        assert_eq!(t, AigLit::TRUE);
        let z0 = m.export_aig(BddRef::ZERO, &mut aig, &ins);
        assert_eq!(z0, AigLit::FALSE);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        fn arb_ops() -> impl Strategy<Value = Vec<(u8, usize, usize)>> {
            proptest::collection::vec((0u8..4, 0usize..64, 0usize..64), 1..30)
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            #[test]
            fn bdd_matches_aig(ops in arb_ops()) {
                let n = 5usize;
                let mut aig = Aig::new();
                let mut pool: Vec<AigLit> =
                    (0..n).map(|i| aig.add_input(format!("x{i}"))).collect();
                for (op, i, j) in ops {
                    let a = pool[i % pool.len()];
                    let b = pool[j % pool.len()];
                    let v = match op {
                        0 => aig.and(a, b),
                        1 => aig.or(a, b),
                        2 => aig.xor(a, b),
                        _ => !a,
                    };
                    pool.push(v);
                }
                let f = *pool.last().unwrap();
                let mut m = Manager::new(n);
                let bf = m.from_aig(&aig, f);
                for v in all_inputs(n) {
                    prop_assert_eq!(m.eval(bf, &v), aig.eval_lit(f, &v));
                }
                // Canonicity: rebuilding gives the identical ref.
                let bf2 = m.from_aig(&aig, f);
                prop_assert_eq!(bf, bf2);
            }
        }
    }
}
