//! XOR and AND bi-decomposition on arithmetic cones: the sum bit of an
//! adder is XOR-decomposable (carry-save structure), an equality
//! comparator is AND-decomposable — the two non-OR operators of the
//! paper (Section IV-B), with function extraction and verification.
//!
//! Run with: `cargo run --release --example xor_and_gates`

use qbf_bidec::circuits::generators;
use qbf_bidec::step::{verify, BiDecomposer, DecompConfig, GateOp, Model};

fn main() {
    // ---- XOR: the top sum bit of a 4-bit ripple adder.
    let adder = generators::ripple_adder(4);
    let sum3 = adder
        .outputs()
        .iter()
        .position(|o| o.name() == "s3")
        .expect("adder has s3");
    let engine = BiDecomposer::new(DecompConfig::new(Model::QbfBalanced));
    let r = engine
        .decompose_output(&adder, sum3, GateOp::Xor)
        .expect("engine run");
    let p = r.partition.expect("sum bits are XOR-decomposable");
    println!(
        "s3 of a 4-bit adder, XOR decomposition: |XA|={} |XB|={} |XC|={} (εB={:.3}, optimal: {})",
        p.num_a(),
        p.num_b(),
        p.num_shared(),
        p.balancedness(),
        r.proved_optimal
    );
    let d = r.decomposition.expect("cofactor extraction");
    verify(&d, None).expect("s3 = fA XOR fB");
    println!("  verified: s3 = fA ⊕ fB with fA over XA∪XC, fB over XB∪XC");

    // ---- AND: an 8-bit equality comparator.
    let cmp = generators::equality_comparator(8);
    let engine = BiDecomposer::new(DecompConfig::new(Model::QbfCombined));
    let r = engine
        .decompose_output(&cmp, 0, GateOp::And)
        .expect("engine run");
    let p = r.partition.expect("equality is AND-decomposable");
    println!(
        "\neq of an 8-bit comparator, AND decomposition: |XA|={} |XB|={} |XC|={} \
         (εD+εB={:.3}, optimal: {})",
        p.num_a(),
        p.num_b(),
        p.num_shared(),
        p.disjointness() + p.balancedness(),
        r.proved_optimal
    );
    assert_eq!(p.num_shared(), 0, "equality splits disjointly");
    let d = r.decomposition.expect("interpolation extraction");
    verify(&d, None).expect("eq = fA AND fB");
    println!("  verified: eq = fA ∧ fB via Craig interpolation on the dual OR core");

    // ---- And a negative case: majority is not bi-decomposable.
    let maj = generators::majority(3);
    let engine = BiDecomposer::new(DecompConfig::new(Model::QbfDisjoint));
    for op in [GateOp::Or, GateOp::And, GateOp::Xor] {
        let r = engine.decompose_output(&maj, 0, op).expect("engine run");
        assert!(r.partition.is_none());
        println!("maj3 under {op}: proved not bi-decomposable");
    }
}
