//! Multi-level logic synthesis by recursive bi-decomposition — the use
//! case the paper's introduction motivates: a complex PO function is
//! iteratively split with two-input OR/AND/XOR gates until the leaves
//! are simple, yielding a gate network.
//!
//! Uses the production `step-synth` driver: the recursion runs through
//! a shared [`StepService`] worker pool (every frontier cone hits the
//! result cache like any other submission), and every emitted network
//! is verified equivalent by a single SAT miter check — not by
//! enumerating all `2^n` input patterns.
//!
//! Run with: `cargo run --release --example multilevel_synthesis`
//!
//! [`StepService`]: qbf_bidec::step::StepService

use std::sync::Arc;

use qbf_bidec::circuits::generators;
use qbf_bidec::step::{DecompConfig, Model, ResultCache, StepService};
use qbf_bidec::synth::{network_equivalent, SynthDriver, SynthOptions};

fn main() {
    // An 8-cube DNF over 12 variables with block structure.
    let mut aig = qbf_bidec::aig::Aig::new();
    let xs: Vec<_> = (0..12).map(|i| aig.add_input(format!("x{i}"))).collect();
    let mut cubes = Vec::new();
    for b in 0..4 {
        let lo = 3 * b;
        let c1 = aig.and(xs[lo], xs[lo + 1]);
        let c2 = aig.and(c1, xs[lo + 2]);
        cubes.push(c2);
    }
    let f = aig.or_many(&cubes);
    aig.add_output("f", f);

    let service = StepService::spawn(2, Some(Arc::new(ResultCache::new())));
    let driver = SynthDriver::new(
        &service,
        DecompConfig::new(Model::QbfCombined),
        SynthOptions::default(),
    );
    let out = driver.synthesize(&aig, 0).expect("engine run");

    println!(
        "original: single PO over {} inputs, {} AND nodes",
        12,
        aig.and_count()
    );
    println!(
        "network:  {} two-input gates, {} leaves, depth {}, max leaf support {}",
        out.tree.num_gates(),
        out.tree.num_leaves(),
        out.tree.depth(),
        out.tree.max_leaf_support()
    );
    println!("\nstructure:\n{}", out.tree.render());

    // The driver already SAT-verified the network (out.stats.verified);
    // run the miter check once more explicitly to show the API — one
    // Unsat answer replaces the old 4096-pattern simulation loop.
    assert!(out.stats.verified);
    network_equivalent(&aig, 0, &out.tree, None).expect("SAT miter proves equivalence");
    println!("rebuilt network verified equivalent by a single SAT miter check");

    // The adder carry chain is a harder customer: its majority cores
    // resist bi-decomposition, and the BDD Shannon fallback splits
    // them until the target leaf support is reached.
    let adder = generators::ripple_adder(4);
    let cout = adder
        .outputs()
        .iter()
        .position(|o| o.name() == "cout")
        .unwrap();
    let out = driver.synthesize(&adder, cout).expect("engine run");
    println!(
        "\n4-bit adder carry-out: {} gates ({} from bi-decomposition, {} Shannon splits), \
         max leaf support {}",
        out.tree.num_gates(),
        out.stats.qbf_gates,
        out.stats.bdd_splits,
        out.tree.max_leaf_support()
    );
}
