//! Multi-level logic synthesis by recursive bi-decomposition — the use
//! case the paper's introduction motivates: a complex PO function is
//! iteratively split with two-input OR/AND/XOR gates until the leaves
//! are simple, yielding a gate network.
//!
//! Run with: `cargo run --release --example multilevel_synthesis`

use qbf_bidec::circuits::generators;
use qbf_bidec::step::{decompose_tree, BiDecomposer, DecompConfig, Model, TreeOptions};

fn main() {
    // An 8-cube DNF over 12 variables with block structure.
    let mut aig = qbf_bidec::aig::Aig::new();
    let xs: Vec<_> = (0..12).map(|i| aig.add_input(format!("x{i}"))).collect();
    let mut cubes = Vec::new();
    for b in 0..4 {
        let lo = 3 * b;
        let c1 = aig.and(xs[lo], xs[lo + 1]);
        let c2 = aig.and(c1, xs[lo + 2]);
        cubes.push(c2);
    }
    let f = aig.or_many(&cubes);
    aig.add_output("f", f);

    let mut engine = BiDecomposer::new(DecompConfig::new(Model::QbfCombined));
    let tree = decompose_tree(&mut engine, &aig, 0, &TreeOptions::default()).expect("engine run");

    println!(
        "original: single PO over {} inputs, {} AND nodes",
        12,
        aig.and_count()
    );
    println!(
        "network:  {} two-input gates, {} leaves, depth {}, max leaf support {}",
        tree.num_gates(),
        tree.num_leaves(),
        tree.depth(),
        tree.max_leaf_support()
    );
    println!("\nstructure:\n{}", tree.render());

    // Rebuild and spot-check equivalence.
    let net = tree.to_aig();
    let mut mismatch = 0;
    for m in 0..1u32 << 12 {
        let v: Vec<bool> = (0..12).map(|i| m >> i & 1 == 1).collect();
        if net.eval(&v)[0] != aig.eval(&v)[0] {
            mismatch += 1;
        }
    }
    assert_eq!(mismatch, 0);
    println!("rebuilt network verified equivalent on all 4096 input patterns");

    // The adder carry chain is a harder customer: leaves stay wider.
    let adder = generators::ripple_adder(4);
    let cout = adder
        .outputs()
        .iter()
        .position(|o| o.name() == "cout")
        .unwrap();
    let tree =
        decompose_tree(&mut engine, &adder, cout, &TreeOptions::default()).expect("engine run");
    println!(
        "\n4-bit adder carry-out: {} gates, max leaf support {} (majority cores resist \
         bi-decomposition)",
        tree.num_gates(),
        tree.max_leaf_support()
    );
}
