//! Compares all five models of the paper (LJH, STEP-MG, STEP-QD,
//! STEP-QB, STEP-QDB) on one function, showing why the QBF models
//! matter: the heuristics return *some* valid partition, the QBF
//! models return partitions with **optimum** disjointness /
//! balancedness / combined cost, and prove it.
//!
//! Run with: `cargo run --release --example optimum_partition`

use qbf_bidec::aig::{Aig, AigLit};
use qbf_bidec::step::{BiDecomposer, DecompConfig, GateOp, Model};

/// A function with many valid OR-partitions of different quality:
/// f = (s ∧ x0 ∧ x1 ∧ x2 ∧ x3) ∨ (s ∧ x4 ∧ x5) ∨ (x0 ∧ x1).
fn build() -> Aig {
    let mut aig = Aig::new();
    let s = aig.add_input("s");
    let xs: Vec<AigLit> = (0..6).map(|i| aig.add_input(format!("x{i}"))).collect();
    let big = aig.and_many(&xs[0..4]);
    let c1 = aig.and(s, big);
    let small = aig.and(xs[4], xs[5]);
    let c2 = aig.and(s, small);
    let extra = aig.and(xs[0], xs[1]);
    let t = aig.or(c1, c2);
    let f = aig.or(t, extra);
    aig.add_output("f", f);
    aig
}

fn main() {
    let aig = build();
    println!(
        "f(s, x0..x5) = (s·x0·x1·x2·x3) ∨ (s·x4·x5) ∨ (x0·x1), {} inputs\n",
        aig.num_inputs()
    );
    println!(
        "{:<10} {:>6} {:>6} {:>6} {:>8} {:>8} {:>8} {:>9} {:>9}",
        "model", "|XA|", "|XB|", "|XC|", "εD", "εB", "εD+εB", "optimal?", "QBFcalls"
    );
    for model in [
        Model::Ljh,
        Model::MusGroup,
        Model::QbfDisjoint,
        Model::QbfBalanced,
        Model::QbfCombined,
    ] {
        let engine = BiDecomposer::new(DecompConfig::new(model));
        let r = engine
            .decompose_output(&aig, 0, GateOp::Or)
            .expect("engine run");
        match &r.partition {
            Some(p) => println!(
                "{:<10} {:>6} {:>6} {:>6} {:>8.3} {:>8.3} {:>8.3} {:>9} {:>9}",
                model.to_string(),
                p.num_a(),
                p.num_b(),
                p.num_shared(),
                p.disjointness(),
                p.balancedness(),
                p.disjointness() + p.balancedness(),
                r.proved_optimal,
                r.qbf_calls
            ),
            None => println!("{model:<10} not decomposable"),
        }
    }
    println!(
        "\nSTEP-QD minimizes εD, STEP-QB minimizes εB, STEP-QDB minimizes the sum \
         (Definition 4 with ϖD = ϖB = 1); all three prove optimality, the \
         heuristics cannot."
    );
}
