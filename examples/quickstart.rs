//! Quickstart: decompose one function with the QBF model and inspect
//! the result.
//!
//! Run with: `cargo run --release --example quickstart`

use qbf_bidec::aig::Aig;
use qbf_bidec::step::{verify, BiDecomposer, DecompConfig, GateOp, Model};

fn main() {
    // f(a,b,c,d,s) = (s ∧ a ∧ b) ∨ (s ∧ c ∧ d): OR-decomposable with
    // exactly one shared variable (s).
    let mut aig = Aig::new();
    let s = aig.add_input("s");
    let a = aig.add_input("a");
    let b = aig.add_input("b");
    let c = aig.add_input("c");
    let d = aig.add_input("d");
    let ab = aig.and(a, b);
    let cd = aig.and(c, d);
    let left = aig.and(s, ab);
    let right = aig.and(s, cd);
    let f = aig.or(left, right);
    aig.add_output("f", f);

    // STEP-QD: optimum disjointness via the QBF model.
    let engine = BiDecomposer::new(DecompConfig::new(Model::QbfDisjoint));
    let result = engine
        .decompose_output(&aig, 0, GateOp::Or)
        .expect("well-formed circuit");

    let partition = result.partition.expect("f is OR-decomposable");
    println!("partition (one letter per input s,a,b,c,d): {partition}");
    println!(
        "|XA| = {}, |XB| = {}, |XC| = {}",
        partition.num_a(),
        partition.num_b(),
        partition.num_shared()
    );
    println!("disjointness εD = {:.3}", partition.disjointness());
    println!("balancedness εB = {:.3}", partition.balancedness());
    println!("optimum proved: {}", result.proved_optimal);
    assert_eq!(partition.num_shared(), 1, "s is the only shared variable");

    // The engine also extracted fA/fB by Craig interpolation and
    // verified f ≡ fA ∨ fB; re-verify here for demonstration.
    let decomp = result.decomposition.expect("extraction enabled by default");
    verify(&decomp, None).expect("f must equal fA OR fB");
    println!(
        "extracted: fA over XA∪XC ({} AND nodes), fB over XB∪XC — verified f = fA ∨ fB",
        decomp.aig.and_count()
    );
}
