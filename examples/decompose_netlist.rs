//! The STEP tool flow on a whole netlist: read a circuit file
//! (`.bench`, `.blif` or `.aag`), convert latches combinationally (ABC
//! `comb`), bi-decompose every primary output, print a per-output
//! report and write the best decomposition back out as BLIF.
//!
//! Run with:
//! `cargo run --release --example decompose_netlist [-- <circuit-file> [or|and|xor]]`
//!
//! Without arguments a c17-like ISCAS netlist is used.

use std::path::Path;

use qbf_bidec::aig::blif;
use qbf_bidec::circuits::load_file;
use qbf_bidec::step::{BiDecomposer, DecompConfig, GateOp, Model};

const C17_LIKE: &str = "\
INPUT(G1)\nINPUT(G2)\nINPUT(G3)\nINPUT(G6)\nINPUT(G7)\n\
OUTPUT(G22)\nOUTPUT(G23)\n\
G10 = NAND(G1, G3)\nG11 = NAND(G3, G6)\nG16 = NAND(G2, G11)\n\
G19 = NAND(G11, G7)\nG22 = NAND(G10, G16)\nG23 = NAND(G16, G19)\n";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let circuit = match args.first() {
        Some(path) => load_file(Path::new(path)).expect("parse circuit file"),
        None => qbf_bidec::aig::bench_io::parse(C17_LIKE).expect("builtin netlist"),
    };
    let op = match args.get(1).map(String::as_str) {
        Some("and") => GateOp::And,
        Some("xor") => GateOp::Xor,
        _ => GateOp::Or,
    };

    let comb = if circuit.is_comb() {
        circuit
    } else {
        println!("sequential circuit: applying comb conversion");
        circuit.comb().expect("latches have next-state functions")
    };
    println!(
        "circuit: {} inputs, {} outputs, {} AND nodes; operator {op}",
        comb.num_inputs(),
        comb.num_outputs(),
        comb.and_count()
    );

    let engine = BiDecomposer::new(DecompConfig::new(Model::QbfDisjoint));
    let result = engine.decompose_circuit(&comb, op).expect("engine run");

    println!(
        "{:<12} {:>8} {:>6} {:>6} {:>6} {:>8} {:>8} {:>9}",
        "output", "support", "|XA|", "|XB|", "|XC|", "εD", "εB", "optimal?"
    );
    for out in &result.outputs {
        match &out.partition {
            Some(p) => println!(
                "{:<12} {:>8} {:>6} {:>6} {:>6} {:>8.3} {:>8.3} {:>9}",
                out.name,
                out.support,
                p.num_a(),
                p.num_b(),
                p.num_shared(),
                p.disjointness(),
                p.balancedness(),
                out.proved_optimal
            ),
            None => println!(
                "{:<12} {:>8} {:>6} {:>6} {:>6} {:>8} {:>8} {:>9}",
                out.name, out.support, "-", "-", "-", "-", "-", "n/a"
            ),
        }
    }
    println!(
        "\n{} of {} outputs decomposed in {:.3}s",
        result.num_decomposed(),
        result.outputs.len(),
        result.cpu.as_secs_f64()
    );

    // Write the first decomposition as a BLIF netlist f = fA <op> fB.
    if let Some(out) = result.outputs.iter().find(|o| o.decomposition.is_some()) {
        let mut d = out.decomposition.clone().expect("checked");
        let combined = d.combine();
        let mut net = d.aig.clone();
        net.add_output(format!("{}_rebuilt", out.name), combined);
        net.add_output(format!("{}_fA", out.name), d.fa);
        net.add_output(format!("{}_fB", out.name), d.fb);
        let text = blif::write(&net, &format!("{}_decomposed", out.name));
        println!("\nBLIF of the `{}` decomposition:\n{}", out.name, text);
    }
}
